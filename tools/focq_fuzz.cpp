// focq differential fuzzer: random FOC1(P) queries over random structures,
// evaluated with the naive oracle and the Theorem 6.10 pipeline under every
// cover backend and several thread counts. Any disagreement is shrunk to a
// minimal repro, written as a replayable .case file and printed as a C++
// snippet.
//
// Usage:
//   focq_fuzz [--seed S] [--cases N] [--max-universe M] [--class NAME]
//             [--updates K] [--time-budget SECONDS] [--out DIR]
//             [--soft-deadline-ms MAX] [--dump] [--stats]
//             [--engine local|approx] [--eps E] [--delta D]
//             [--approx-seed S] [--trials K]
//   focq_fuzz --replay FILE...      replay .case files (regression check)
//   focq_fuzz --corpus DIR          replay every .case file in a directory
//   focq_fuzz --self-test           inject a miscounting engine and verify
//                                   the harness catches and shrinks it
//   focq_fuzz --frames N            byte-level fuzz of the focq_serve wire
//                                   protocol: N random frame streams are
//                                   round-tripped through the incremental
//                                   FrameDecoder in random-sized chunks, then
//                                   mutated (truncation, bit flips, garbage
//                                   insertion, clobbered length prefixes) —
//                                   the decoder must answer every stream with
//                                   frames or a clean sticky Status, never a
//                                   crash
//
// --engine approx switches the differential oracle to the error-band mode:
// every case runs Engine::kApprox under both stratify modes and several
// thread counts, and count columns are admitted when they lie within the
// theoretical Hoeffding band (ApproxErrorBound) of the naive oracle —
// row membership and booleans must still match exactly, and estimates must
// be bit-identical across thread counts and warm/cold contexts for the
// fixed --approx-seed. --trials K instead evaluates every case K times
// under consecutive seeds against the delta-level band and fails when the
// empirical violation rate is statistically inconsistent with --delta
// (exact binomial / Clopper-Pearson gate). --engine approx excludes
// --updates and --soft-deadline-ms (the approx driver runs neither update
// sequences nor the watchdog).
//
// --updates K switches generated cases to update-sequence mode: each case
// carries K random tuple inserts/deletes, the subject evaluates warm through
// one incrementally repaired EvalContext after every step, and the oracle
// rebuilds from scratch (DESIGN.md §3e). Replay handles both flavours — the
// .case file records the sequence.
//
// --soft-deadline-ms MAX arms a per-case random *soft* deadline in
// [0, MAX] ms (0 disarms) on every subject variant: soft expiry observes
// and continues, so agreement checks are unchanged while the watchdog
// poll/expiry paths run on every case — the CI fuzz-smoke exercises this
// under ASan.
//
// Exit codes: 0 = all cases agree, 1 = disagreement found (or self-test
// failed), 2 = usage / input error.
//
// Examples:
//   focq_fuzz --seed 42 --cases 500
//   focq_fuzz --seed 42 --cases 500 --updates 4
//   focq_fuzz --seed 7 --cases 200 --class tree --max-universe 12
//   focq_fuzz --corpus ../tests/corpus
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "focq/obs/metrics.h"
#include "focq/serve/protocol.h"
#include "focq/testing/case_io.h"
#include "focq/testing/differential.h"
#include "focq/testing/shrink.h"
#include "focq/util/rng.h"

namespace {

using namespace focq;
using namespace focq::fuzz;

int Usage() {
  std::fprintf(stderr,
               "usage: focq_fuzz [--seed S] [--cases N] [--max-universe M]\n"
               "                 [--class NAME] [--updates K]\n"
               "                 [--time-budget SECONDS]\n"
               "                 [--soft-deadline-ms MAX]\n"
               "                 [--engine local|approx] [--eps E] "
               "[--delta D]\n"
               "                 [--approx-seed S] [--trials K]\n"
               "                 [--out DIR] [--dump] [--stats]\n"
               "       focq_fuzz --replay FILE...\n"
               "       focq_fuzz --corpus DIR\n"
               "       focq_fuzz --self-test\n"
               "       focq_fuzz --frames N [--seed S]\n"
               "classes:");
  for (StructureClass cls : AllStructureClasses()) {
    std::fprintf(stderr, " %s", StructureClassName(cls).c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "focq_fuzz: %s\n", message.c_str());
  return 2;
}

// How one case is driven: exact bit-identical differential (RunCase) or the
// approx error-band driver (RunApproxCase / RunApproxTrials). Injected into
// failure reporting and replay so shrinking reuses the same driver that
// caught the failure.
using CaseRunner = std::function<std::optional<DiffFailure>(const DiffCase&)>;

// Reports a failure: shrinks it, writes the .case file and prints the repro.
int ReportFailure(const DiffFailure& failure, const CaseRunner& run,
                  const std::string& out_dir, std::uint64_t seed,
                  std::size_t case_index) {
  std::fprintf(stderr, "focq_fuzz: DISAGREEMENT on case %zu (seed %llu)\n%s\n",
               case_index, static_cast<unsigned long long>(seed),
               failure.description.c_str());

  ShrinkStats stats;
  DiffCase shrunk = Shrink(
      failure.c, [&](const DiffCase& c) { return run(c).has_value(); },
      ShrinkLimits{}, &stats);
  std::fprintf(stderr,
               "focq_fuzz: shrunk to |A|=%zu after %zu evaluations "
               "(%zu reductions)\n",
               shrunk.structure.Order(), stats.evaluations, stats.reductions);
  std::optional<DiffFailure> final_failure = run(shrunk);
  if (final_failure.has_value()) {
    std::fprintf(stderr, "focq_fuzz: minimal repro:\n%s\n",
                 final_failure->description.c_str());
  }

  std::string path = out_dir + "/fail-seed" + std::to_string(seed) + "-case" +
                     std::to_string(case_index) + ".case";
  Status written = WriteCaseFile(path, shrunk);
  if (written.ok()) {
    std::fprintf(stderr, "focq_fuzz: wrote %s (replay with --replay)\n",
                 path.c_str());
  } else {
    std::fprintf(stderr, "focq_fuzz: could not write %s: %s\n", path.c_str(),
                 written.ToString().c_str());
  }
  std::fprintf(stderr, "focq_fuzz: C++ repro snippet:\n%s",
               CaseToCppSnippet(shrunk).c_str());
  return 1;
}

int Replay(const std::vector<std::string>& paths, const CaseRunner& run) {
  int failures = 0;
  for (const std::string& path : paths) {
    Result<DiffCase> c = ReadCaseFile(path);
    if (!c.ok()) return Fail(path + ": " + c.status().ToString());
    std::optional<DiffFailure> failure = run(*c);
    if (failure.has_value()) {
      std::fprintf(stderr, "focq_fuzz: FAIL %s\n%s\n", path.c_str(),
                   failure->description.c_str());
      ++failures;
    } else {
      std::printf("replay ok: %s\n", path.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}

int SelfTest() {
  // The harness must catch a deliberately miscounting subject and shrink the
  // caught case to a tiny repro (<= 10 elements). Scans seeds until a case
  // triggers the injected bug; well under 100 attempts in practice.
  DiffConfig config;
  config.subject = MiscountingSubject;
  StructureGenOptions structure_options;
  structure_options.min_universe = 4;
  structure_options.max_universe = 16;
  FormulaGenOptions formula_options;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    DiffCase c = GenerateCase(structure_options, formula_options, &rng);
    std::optional<DiffFailure> failure = RunCase(c, config);
    if (!failure.has_value()) continue;
    std::printf("self-test: injected miscount caught (seed %llu, |A|=%zu)\n",
                static_cast<unsigned long long>(seed), c.structure.Order());
    ShrinkStats stats;
    DiffCase shrunk = Shrink(
        failure->c,
        [&](const DiffCase& cs) { return RunCase(cs, config).has_value(); },
        ShrinkLimits{}, &stats);
    std::printf("self-test: shrunk |A|=%zu -> %zu (%zu evaluations)\n",
                c.structure.Order(), shrunk.structure.Order(),
                stats.evaluations);
    if (shrunk.structure.Order() > 10) {
      std::fprintf(stderr, "focq_fuzz: self-test FAILED: shrunk case still "
                           "has %zu elements (want <= 10)\n",
                   shrunk.structure.Order());
      return 1;
    }
    // The shrunk case must still fail under the faulty subject and round-trip
    // through the .case format.
    if (!RunCase(shrunk, config).has_value()) {
      std::fprintf(stderr,
                   "focq_fuzz: self-test FAILED: shrunk case passes\n");
      return 1;
    }
    Result<DiffCase> reread = ReadCase(WriteCase(shrunk));
    if (!reread.ok() || !RunCase(*reread, config).has_value()) {
      std::fprintf(stderr, "focq_fuzz: self-test FAILED: .case round-trip "
                           "lost the failure\n");
      return 1;
    }
    // Sanity check in the other direction: the real pipeline must pass the
    // same case.
    if (RunCase(shrunk, DiffConfig{}).has_value()) {
      std::fprintf(stderr, "focq_fuzz: self-test FAILED: real engines "
                           "disagree on the shrunk case\n");
      return 1;
    }
    std::printf("self-test: ok\n");
    return 0;
  }
  std::fprintf(stderr,
               "focq_fuzz: self-test FAILED: no seed triggered the bug\n");
  return 1;
}

// Byte-level fuzz of the focq_serve frame codec. Two properties per stream:
//   1. Round-trip: a clean stream of encoded requests/responses, fed to the
//      incremental FrameDecoder in random-sized chunks, decodes to exactly
//      the messages that were encoded, ending on a frame boundary.
//   2. Robustness: a mutated copy (truncated, bit-flipped, garbage-injected
//      or length-clobbered) yields frames and/or one sticky clean Status —
//      never a crash, and never an error that un-sticks.
int RunFrameFuzz(std::uint64_t seed, std::size_t iterations) {
  using namespace focq::serve;
  Rng rng(seed);
  auto random_text = [&rng]() {
    std::string text;
    const std::size_t len = rng.NextBelow(48);
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    return text;
  };
  constexpr FrameKind kRequestKinds[] = {
      FrameKind::kCheck, FrameKind::kCount,    FrameKind::kTerm,
      FrameKind::kUpdate, FrameKind::kPing,    FrameKind::kShutdown};
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    // Encode a random message sequence (both directions share one framing,
    // so mixing requests and responses in one stream is fair game for the
    // decoder; direction-specific decoding is checked per message).
    std::string wire;
    std::vector<Request> requests;
    std::vector<Response> responses;
    std::vector<bool> is_request;
    const std::size_t messages = 1 + rng.NextBelow(8);
    for (std::size_t m = 0; m < messages; ++m) {
      if (rng.NextBelow(2) == 0) {
        Request request;
        request.kind = kRequestKinds[rng.NextBelow(6)];
        request.id = static_cast<std::uint32_t>(rng.NextBelow(1u << 16));
        if (IsStatementKind(request.kind)) {
          // All flag combinations: explain bit x trace-id bit; a set
          // trace-id flag carries a random 8-byte id in the body.
          request.flags = static_cast<std::uint8_t>(rng.NextBelow(4));
          if ((request.flags & kRequestFlagTraceId) != 0) {
            request.trace_id = rng.Next();
          }
          request.text = random_text();
        }
        AppendRequestFrame(&wire, request);
        requests.push_back(request);
        is_request.push_back(true);
      } else {
        Response response;
        response.ok = rng.NextBelow(2) == 0;
        response.id = static_cast<std::uint32_t>(rng.NextBelow(1u << 16));
        response.seq = rng.NextBelow(1u << 20);
        response.text = random_text();
        AppendResponseFrame(&wire, response);
        responses.push_back(response);
        is_request.push_back(false);
      }
    }

    // Property 1: chunked round-trip.
    FrameDecoder decoder;
    std::size_t offset = 0;
    std::size_t decoded = 0, req_i = 0, resp_i = 0;
    for (;;) {
      for (;;) {
        Result<std::optional<Frame>> next = decoder.Next();
        if (!next.ok()) {
          std::fprintf(stderr,
                       "focq_fuzz: frames: clean stream poisoned on "
                       "iteration %zu: %s\n",
                       iter, next.status().ToString().c_str());
          return 1;
        }
        if (!next->has_value()) break;
        if (decoded >= messages) {
          std::fprintf(stderr,
                       "focq_fuzz: frames: extra frame on iteration %zu\n",
                       iter);
          return 1;
        }
        bool match = false;
        if (is_request[decoded]) {
          Result<Request> r = DecodeRequest(**next);
          const Request& want = requests[req_i++];
          match = r.ok() && r->kind == want.kind && r->id == want.id &&
                  r->flags == want.flags && r->text == want.text &&
                  ((want.flags & kRequestFlagTraceId) == 0 ||
                   r->trace_id == want.trace_id);
        } else {
          Result<Response> r = DecodeResponse(**next);
          const Response& want = responses[resp_i++];
          match = r.ok() && r->ok == want.ok && r->id == want.id &&
                  r->seq == want.seq && r->text == want.text;
        }
        if (!match) {
          std::fprintf(stderr,
                       "focq_fuzz: frames: round-trip mismatch on iteration "
                       "%zu, frame %zu\n",
                       iter, decoded);
          return 1;
        }
        ++decoded;
      }
      if (offset >= wire.size()) break;
      const std::size_t chunk =
          std::min(wire.size() - offset, 1 + rng.NextBelow(17));
      decoder.Feed(std::string_view(wire).substr(offset, chunk));
      offset += chunk;
    }
    if (decoded != messages || !decoder.AtFrameBoundary().ok()) {
      std::fprintf(stderr,
                   "focq_fuzz: frames: clean stream decoded %zu of %zu "
                   "frames on iteration %zu\n",
                   decoded, messages, iter);
      return 1;
    }

    // Property 2: a mutated stream never crashes the decoder, and an error,
    // once reported, stays sticky.
    std::string bad = wire;
    switch (rng.NextBelow(4)) {
      case 0:  // truncate mid-frame
        bad.resize(rng.NextBelow(bad.size() + 1));
        break;
      case 1: {  // flip a few random bytes
        const std::size_t flips = 1 + rng.NextBelow(4);
        for (std::size_t f = 0; f < flips && !bad.empty(); ++f) {
          bad[rng.NextBelow(bad.size())] ^=
              static_cast<char>(1 + rng.NextBelow(255));
        }
        break;
      }
      case 2: {  // inject garbage bytes at a random position
        std::string garbage = random_text();
        bad.insert(rng.NextBelow(bad.size() + 1), garbage);
        break;
      }
      default: {  // clobber the first length prefix (oversized / zero)
        if (bad.size() >= 4) {
          const std::uint32_t clobber =
              rng.NextBelow(2) == 0 ? 0u : 0xffffffffu;
          for (int b = 0; b < 4; ++b) {
            bad[b] = static_cast<char>((clobber >> (8 * b)) & 0xff);
          }
        }
        break;
      }
    }
    FrameDecoder hostile;
    std::size_t bad_offset = 0;
    bool poisoned = false;
    while (bad_offset < bad.size() && !poisoned) {
      const std::size_t chunk =
          std::min(bad.size() - bad_offset, 1 + rng.NextBelow(17));
      hostile.Feed(std::string_view(bad).substr(bad_offset, chunk));
      bad_offset += chunk;
      for (;;) {
        Result<std::optional<Frame>> next = hostile.Next();
        if (!next.ok()) {
          // Sticky: the same stream error again on the next poll.
          Result<std::optional<Frame>> again = hostile.Next();
          if (again.ok() ||
              again.status().code() != next.status().code()) {
            std::fprintf(stderr,
                         "focq_fuzz: frames: error not sticky on "
                         "iteration %zu\n",
                         iter);
            return 1;
          }
          poisoned = true;
          break;
        }
        if (!next->has_value()) break;
      }
    }
    (void)hostile.AtFrameBoundary();  // must not crash either way
  }
  std::printf("frames: %zu streams ok (seed %llu)\n", iterations,
              static_cast<unsigned long long>(seed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::size_t cases = 200;
  std::size_t max_universe = 24;
  std::size_t updates = 0;  // per-case update-sequence length (0 = off)
  std::uint64_t soft_deadline_max_ms = 0;  // 0 = watchdog off
  double time_budget_s = 0.0;  // 0 = unlimited
  std::string engine_name = "local";
  ApproxParams approx_params;  // --eps / --delta / --approx-seed
  std::uint64_t trials = 0;    // 0 = single-run band mode
  std::string out_dir = ".";
  std::optional<StructureClass> cls;
  std::vector<std::string> replay_paths;
  std::string corpus_dir;
  std::size_t frames = 0;  // wire-protocol fuzz stream count (0 = off)
  bool self_test = false;
  bool dump = false;
  bool stats = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto parse_u64 = [&](const char* v, std::uint64_t* out) {
      if (v == nullptr) return false;
      // Digits only: std::stoull accepts a leading '-' and wraps, which
      // would turn "--seed -1" into a huge seed instead of a usage error.
      std::string text(v);
      if (text.empty() ||
          text.find_first_not_of("0123456789") != std::string::npos) {
        return false;
      }
      try {
        std::size_t pos = 0;
        *out = std::stoull(text, &pos);
        return pos == text.size();
      } catch (const std::exception&) {
        return false;
      }
    };
    if (arg == "--seed") {
      if (!parse_u64(next(), &seed)) return Usage();
    } else if (arg == "--cases") {
      std::uint64_t v = 0;
      if (!parse_u64(next(), &v)) return Usage();
      cases = static_cast<std::size_t>(v);
    } else if (arg == "--max-universe") {
      std::uint64_t v = 0;
      if (!parse_u64(next(), &v) || v < 1) return Usage();
      max_universe = static_cast<std::size_t>(v);
    } else if (arg == "--updates") {
      std::uint64_t v = 0;
      if (!parse_u64(next(), &v)) return Usage();
      updates = static_cast<std::size_t>(v);
    } else if (arg == "--soft-deadline-ms") {
      if (!parse_u64(next(), &soft_deadline_max_ms)) return Usage();
    } else if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return Usage();
      engine_name = v;
    } else if (arg == "--eps" || arg == "--delta") {
      const char* v = next();
      if (v == nullptr) return Usage();
      double* out = arg == "--eps" ? &approx_params.eps : &approx_params.delta;
      try {
        std::size_t pos = 0;
        *out = std::stod(v, &pos);
        if (pos != std::string(v).size()) return Usage();
      } catch (const std::exception&) {
        return Usage();
      }
    } else if (arg == "--approx-seed") {
      if (!parse_u64(next(), &approx_params.seed)) return Usage();
    } else if (arg == "--trials") {
      if (!parse_u64(next(), &trials)) return Usage();
    } else if (arg == "--time-budget") {
      const char* v = next();
      if (v == nullptr) return Usage();
      try {
        time_budget_s = std::stod(v);
      } catch (const std::exception&) {
        return Usage();
      }
      if (time_budget_s < 0) return Usage();
    } else if (arg == "--class") {
      const char* v = next();
      if (v == nullptr) return Usage();
      cls = ParseStructureClass(v);
      if (!cls.has_value()) {
        return Fail("unknown structure class '" + std::string(v) + "'");
      }
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      out_dir = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return Usage();
      replay_paths.push_back(v);
    } else if (arg == "--corpus") {
      const char* v = next();
      if (v == nullptr) return Usage();
      corpus_dir = v;
    } else if (arg == "--frames") {
      std::uint64_t v = 0;
      if (!parse_u64(next(), &v) || v < 1) return Usage();
      frames = static_cast<std::size_t>(v);
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--stats") {
      stats = true;
    } else {
      return Usage();
    }
  }

  if (self_test) return SelfTest();
  if (frames > 0) return RunFrameFuzz(seed, frames);

  const bool approx_mode = engine_name == "approx";
  if (!approx_mode && engine_name != "local") {
    return Fail("unknown engine '" + engine_name + "'");
  }
  if (approx_mode) {
    if (Status valid = ValidateApproxParams(approx_params); !valid.ok()) {
      return Fail(valid.message());
    }
    if (updates > 0) {
      return Fail("--engine approx does not support --updates");
    }
    if (soft_deadline_max_ms > 0) {
      return Fail("--engine approx does not support --soft-deadline-ms");
    }
  } else if (trials > 0) {
    return Fail("--trials requires --engine approx");
  }

  DiffConfig config;
  ApproxDiffConfig approx_config;
  approx_config.params = approx_params;
  CaseRunner run = [&](const DiffCase& c) -> std::optional<DiffFailure> {
    if (!approx_mode) return RunCase(c, config);
    if (trials > 0) {
      return RunApproxTrials(c, approx_config, static_cast<int>(trials));
    }
    return RunApproxCase(c, approx_config);
  };
  if (!corpus_dir.empty()) {
    std::error_code ec;
    std::vector<std::string> paths;
    for (const auto& entry :
         std::filesystem::directory_iterator(corpus_dir, ec)) {
      if (entry.path().extension() == ".case") {
        paths.push_back(entry.path().string());
      }
    }
    if (ec) return Fail("cannot read directory '" + corpus_dir + "'");
    if (paths.empty()) return Fail("no .case files in '" + corpus_dir + "'");
    std::sort(paths.begin(), paths.end());
    replay_paths.insert(replay_paths.end(), paths.begin(), paths.end());
  }
  if (!replay_paths.empty()) return Replay(replay_paths, run);

  StructureGenOptions structure_options;
  structure_options.max_universe = max_universe;
  structure_options.cls = cls;
  FormulaGenOptions formula_options;

  auto start = std::chrono::steady_clock::now();
  Rng rng(seed);
  MetricsSink case_metrics;  // per-case wall-time distribution (--stats)
  std::size_t executed = 0;
  for (std::size_t i = 0; i < cases; ++i) {
    if (time_budget_s > 0) {
      std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= time_budget_s) {
        std::printf("time budget reached after %zu cases\n", executed);
        break;
      }
    }
    DiffCase c = GenerateCase(structure_options, formula_options, &rng);
    if (updates > 0) AppendRandomUpdates(&c, updates, &rng);
    if (soft_deadline_max_ms > 0) {
      config.soft_deadline_ms =
          static_cast<std::int64_t>(rng.NextBelow(soft_deadline_max_ms + 1));
    }
    if (dump) {
      std::printf("--- case %zu ---\n%s", i, WriteCase(c).c_str());
    }
    auto case_start = std::chrono::steady_clock::now();
    std::optional<DiffFailure> failure = run(c);
    if (stats) {
      auto case_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - case_start)
                         .count();
      case_metrics.RecordValue("fuzz.case_ns", case_ns);
    }
    if (failure.has_value()) {
      return ReportFailure(*failure, run, out_dir, seed, i);
    }
    ++executed;
    if (executed % 100 == 0) {
      std::printf("... %zu/%zu cases ok\n", executed, cases);
    }
  }
  std::printf("all %zu cases agree (seed %llu)\n", executed,
              static_cast<unsigned long long>(seed));
  if (stats && executed > 0) {
    ValueStats wall = case_metrics.Snapshot().values["fuzz.case_ns"];
    double total_s = static_cast<double>(wall.sum) / 1e9;
    std::printf(
        "stats: %lld cases in %.3f s (%.1f cases/s); per case "
        "mean %.3f ms, min %.3f ms, max %.3f ms\n",
        static_cast<long long>(wall.count), total_s,
        total_s > 0 ? static_cast<double>(wall.count) / total_s : 0.0,
        wall.Mean() / 1e6, static_cast<double>(wall.min) / 1e6,
        static_cast<double>(wall.max) / 1e6);
  }
  return 0;
}
