// focq command-line interface: evaluate FOC(P) sentences, counting problems
// and ground terms against a structure file.
//
// Usage:
//   focq_cli <structure-file> [--edges] [--engine naive|local|cover|approx]
//            [--threads N] [--update 'insert E 0 1']...
//            [--eps E] [--delta D] [--approx-seed S] [--approx-stratify]
//            (--check '<sentence>' | --count '<formula>' | --term '<term>'
//             | --batch FILE)
//            [--stats] [--metrics-json PATH] [--trace-json PATH]
//
//   <structure-file>   focq structure format (see focq/structure/io.h), or a
//                      plain "u v" edge list with --edges
//   --check            decide A |= phi for a sentence
//   --count            the counting problem |phi(A)|
//   --term             evaluate a ground counting term
//   --update           apply a tuple update ("insert <symbol> <elem>..." or
//                      "delete <symbol> <elem>...") to the loaded structure
//                      before evaluation; repeatable, applied in order. See
//                      DESIGN.md section 3e for the update model
//   --batch            evaluate many statements against the one structure
//                      through a shared Session, so Gaifman graphs, covers
//                      and sphere typings are built once and reused. Each
//                      non-empty, non-'#' line of FILE is
//                      "check <sentence>", "count <formula>", "term <term>"
//                      or "update <spec>"; update lines mutate the live
//                      structure between statements and incrementally repair
//                      the session's cached artifacts instead of discarding
//                      them. Results are printed per line and a cache
//                      summary at the end
//   --engine           naive = Definition 3.1 semantics;
//                      local = Theorem 6.10 pipeline (default);
//                      cover = local with sparse-cover cl-term evaluation;
//                      approx = sampling estimation of counting terms with
//                      the (eps, delta) Hoeffding contract (DESIGN.md §3f);
//                      sentences and query conditions stay exact
//   --eps              approx relative/frame error bound, in (0, 1)
//                      (default 0.1); only meaningful with --engine approx
//   --delta            approx failure probability, in (0, 1) (default 0.01)
//   --approx-seed      RNG seed for --engine approx (default 1); one seed
//                      fixes every estimate bit-identically across thread
//                      counts and warm/cold contexts
//   --approx-stratify  stratify samples by radius-1 Hanf sphere type
//   --threads          worker threads (0 = all hardware threads, default 1);
//                      results are identical for every value
//   --stats            print plan statistics (layers, cl-terms, fallbacks)
//                      and pipeline/pool counters after evaluation
//   --metrics-json     write pipeline counters, value distributions,
//                      per-phase wall time and pool statistics as JSON
//                      ({"counters","values","phase_ns","pool"})
//   --trace-json       write the phase-span forest as JSON: nested "spans"
//                      plus chrome://tracing / Perfetto "traceEvents"
//   --explain          print the compiled plan tree (formula -> layers ->
//                      marker relations -> cl-terms -> residual) WITHOUT
//                      evaluating. Not available with --batch
//   --explain-analyze  evaluate, then print the plan tree annotated with
//                      per-node wall time, peak bytes and deterministic
//                      pipeline counters. With --batch each statement gets
//                      its own "query"/"check"/... root; cached-artifact
//                      builds (Gaifman graph, covers, sphere typings) appear
//                      as root-level "artifact" nodes charged to the
//                      statement that missed the cache
//   --explain-json     write the explain document as JSON
//                      ({"explain":{"analyzed","nodes":[...]}}); implies
//                      --explain-analyze unless --explain was given
//   --progress         print a per-phase progress snapshot ("cover 8/8
//                      cl_term 120/4096 ...") after every evaluation (per
//                      statement with --batch)
//   --deadline-ms      hard per-statement time budget: a statement past it
//                      is cancelled cooperatively at the next chunk boundary
//                      and reports kDeadlineExceeded with the progress
//                      snapshot; remaining batch statements still run
//   --soft-deadline-ms soft budget: the statement keeps running, but the
//                      expiry is noted on stderr and — when --flight-record
//                      is on — the flight recorder is dumped there, so slow
//                      queries leave a postmortem while still completing
//   --flight-record    enable the in-process flight recorder (ring buffer of
//                      phase/cache/fan-out/watchdog events) and write its
//                      final dump to FILE; also dumped to stderr on soft
//                      expiry and on FOCQ_CHECK failure
//   --openmetrics      write an OpenMetrics/Prometheus text exposition of
//                      the run to FILE: counters as focq_<name>_total, value
//                      distributions as focq_dist_<name> histograms, phase
//                      progress as gauges. With --batch one timestamped
//                      sample is taken per statement (a time series);
//                      otherwise one sample at exit
//
// Examples:
//   focq_cli graph.fs --check 'exists x. @eq(#(y). (E(x, y)), 4)'
//   focq_cli web.edges --edges --count '@ge1(#(y). (E(x, y)) - 10)'
//   focq_cli web.edges --edges --threads=8 --engine cover --count '...'
//       --metrics-json metrics.json --trace-json run.trace.json
//   focq_cli graph.fs --engine cover --batch workload.txt --stats
//   focq_cli graph.fs --update 'insert E 0 5' --update 'delete E 2 3'
//       --count '@ge1(#(y). (E(x, y)) - 2)'
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "focq/core/api.h"
#include "focq/logic/fragment.h"
#include "focq/logic/parser.h"
#include "focq/obs/json_export.h"
#include "focq/obs/recorder.h"
#include "focq/structure/io.h"
#include "focq/structure/update.h"
#include "focq/util/thread_pool.h"

namespace {

// Every user-input failure exits 1 with a one-line diagnostic on stderr, so
// scripted drivers (CI, fuzz replay) can branch on the exit code.
int Fail(const std::string& message) {
  std::fprintf(stderr, "focq_cli: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: focq_cli <structure-file> [--edges] "
               "[--engine naive|local|cover|approx] [--threads N] [--stats]\n"
               "                [--eps E] [--delta D] [--approx-seed S] "
               "[--approx-stratify]\n"
               "                [--update 'insert E 0 1']...\n"
               "                [--metrics-json PATH] [--trace-json PATH]\n"
               "                [--explain | --explain-analyze] "
               "[--explain-json PATH]\n"
               "                [--progress] [--deadline-ms N] "
               "[--soft-deadline-ms N]\n"
               "                [--flight-record PATH] [--openmetrics PATH]\n"
               "                (--check S | --count F | --term T "
               "| --batch FILE)\n");
  return 2;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content << "\n";
  return out.good();
}

// Verbatim write — the OpenMetrics format requires '# EOF' to be the last
// line, so no trailing newline may be appended.
bool WriteFileRaw(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace focq;
  if (argc < 2) return Usage();

  std::string path = argv[1];
  bool edges = false;
  bool stats = false;
  std::string engine_name = "local";
  std::string threads_text = "1";
  std::string eps_text = "0.1", delta_text = "0.01", approx_seed_text = "1";
  bool approx_stratify = false;
  std::string mode, query_text;
  std::string batch_path;
  std::vector<std::string> update_specs;
  std::string metrics_path, trace_path;
  bool explain = false;
  bool explain_analyze = false;
  std::string explain_json_path;
  bool show_progress = false;
  std::string deadline_text = "0", soft_deadline_text = "0";
  std::string flight_path, openmetrics_path;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--edges") {
      edges = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return Usage();
      engine_name = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage();
      threads_text = v;
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads_text = arg.substr(std::string("--threads=").size());
    } else if (arg == "--eps") {
      const char* v = next();
      if (v == nullptr) return Usage();
      eps_text = v;
    } else if (arg.rfind("--eps=", 0) == 0) {
      eps_text = arg.substr(std::string("--eps=").size());
    } else if (arg == "--delta") {
      const char* v = next();
      if (v == nullptr) return Usage();
      delta_text = v;
    } else if (arg.rfind("--delta=", 0) == 0) {
      delta_text = arg.substr(std::string("--delta=").size());
    } else if (arg == "--approx-seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      approx_seed_text = v;
    } else if (arg.rfind("--approx-seed=", 0) == 0) {
      approx_seed_text = arg.substr(std::string("--approx-seed=").size());
    } else if (arg == "--approx-stratify") {
      approx_stratify = true;
    } else if (arg == "--metrics-json") {
      const char* v = next();
      if (v == nullptr) return Usage();
      metrics_path = v;
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_path = arg.substr(std::string("--metrics-json=").size());
    } else if (arg == "--trace-json") {
      const char* v = next();
      if (v == nullptr) return Usage();
      trace_path = v;
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      trace_path = arg.substr(std::string("--trace-json=").size());
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--explain-analyze") {
      explain_analyze = true;
    } else if (arg == "--explain-json") {
      const char* v = next();
      if (v == nullptr) return Usage();
      explain_json_path = v;
    } else if (arg.rfind("--explain-json=", 0) == 0) {
      explain_json_path = arg.substr(std::string("--explain-json=").size());
    } else if (arg == "--progress") {
      show_progress = true;
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return Usage();
      deadline_text = v;
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      deadline_text = arg.substr(std::string("--deadline-ms=").size());
    } else if (arg == "--soft-deadline-ms") {
      const char* v = next();
      if (v == nullptr) return Usage();
      soft_deadline_text = v;
    } else if (arg.rfind("--soft-deadline-ms=", 0) == 0) {
      soft_deadline_text =
          arg.substr(std::string("--soft-deadline-ms=").size());
    } else if (arg == "--flight-record") {
      const char* v = next();
      if (v == nullptr) return Usage();
      flight_path = v;
    } else if (arg.rfind("--flight-record=", 0) == 0) {
      flight_path = arg.substr(std::string("--flight-record=").size());
    } else if (arg == "--openmetrics") {
      const char* v = next();
      if (v == nullptr) return Usage();
      openmetrics_path = v;
    } else if (arg.rfind("--openmetrics=", 0) == 0) {
      openmetrics_path = arg.substr(std::string("--openmetrics=").size());
    } else if (arg == "--update") {
      const char* v = next();
      if (v == nullptr) return Usage();
      update_specs.push_back(v);
    } else if (arg.rfind("--update=", 0) == 0) {
      update_specs.push_back(arg.substr(std::string("--update=").size()));
    } else if (arg == "--batch") {
      const char* v = next();
      if (v == nullptr) return Usage();
      batch_path = v;
    } else if (arg.rfind("--batch=", 0) == 0) {
      batch_path = arg.substr(std::string("--batch=").size());
    } else if (arg == "--check" || arg == "--count" || arg == "--term") {
      const char* v = next();
      if (v == nullptr || !mode.empty()) return Usage();
      mode = arg;
      query_text = v;
    } else {
      return Usage();
    }
  }
  // Exactly one of a single-statement mode or a batch file.
  if (mode.empty() == batch_path.empty()) return Usage();

  EvalOptions options;
  try {
    std::size_t pos = 0;
    options.num_threads = std::stoi(threads_text, &pos);
    if (pos != threads_text.size() || options.num_threads < 0) {
      return Fail("--threads expects a non-negative integer");
    }
  } catch (const std::exception&) {
    return Fail("--threads expects a non-negative integer");
  }
  auto parse_ms = [](const std::string& text, std::int64_t* out) -> bool {
    try {
      std::size_t pos = 0;
      *out = std::stoll(text, &pos);
      return pos == text.size() && *out >= 0;
    } catch (const std::exception&) {
      return false;
    }
  };
  if (!parse_ms(deadline_text, &options.deadline.hard_ms)) {
    return Fail("--deadline-ms expects a non-negative integer");
  }
  if (!parse_ms(soft_deadline_text, &options.deadline.soft_ms)) {
    return Fail("--soft-deadline-ms expects a non-negative integer");
  }
  if (engine_name == "naive") {
    options.engine = Engine::kNaive;
  } else if (engine_name == "local") {
    options.engine = Engine::kLocal;
  } else if (engine_name == "cover") {
    options.engine = Engine::kLocal;
    options.term_engine = TermEngine::kSparseCover;
  } else if (engine_name == "approx") {
    options.engine = Engine::kApprox;
  } else {
    return Fail("unknown engine '" + engine_name + "'");
  }
  auto parse_prob = [](const std::string& text, double* out) -> bool {
    try {
      std::size_t pos = 0;
      *out = std::stod(text, &pos);
      return pos == text.size();
    } catch (const std::exception&) {
      return false;
    }
  };
  if (!parse_prob(eps_text, &options.approx.eps)) {
    return Fail("--eps expects a number in (0, 1)");
  }
  if (!parse_prob(delta_text, &options.approx.delta)) {
    return Fail("--delta expects a number in (0, 1)");
  }
  // Digits only before std::stoull: stoull itself accepts a leading '-' and
  // wraps ("-1" would silently become 18446744073709551615 — a different
  // RNG stream than the user asked for, with no diagnostic).
  if (approx_seed_text.empty() ||
      approx_seed_text.find_first_not_of("0123456789") != std::string::npos) {
    return Fail("--approx-seed expects a non-negative integer");
  }
  try {
    std::size_t pos = 0;
    options.approx.seed = std::stoull(approx_seed_text, &pos);
    if (pos != approx_seed_text.size()) {
      return Fail("--approx-seed expects a non-negative integer");
    }
  } catch (const std::exception&) {
    return Fail("--approx-seed expects a non-negative integer");
  }
  options.approx.stratify = approx_stratify;
  // Bad accuracy parameters are rejected up front — even for exact engines,
  // where they would be silently ignored — so a typo never yields an
  // unwitting (eps, delta) contract change on a later --engine approx run.
  if (Status valid = ValidateApproxParams(options.approx); !valid.ok()) {
    return Fail(valid.message());
  }

  if (explain && explain_analyze) {
    return Fail("--explain and --explain-analyze are mutually exclusive");
  }
  if (!explain_json_path.empty() && !explain) explain_analyze = true;
  // EXPLAIN ANALYZE attributes *deterministic* per-node counters; the approx
  // engine's per-node sample tallies depend on (eps, delta, seed), which
  // would poison that contract — reject the combination outright (including
  // the --explain-json form that implies it).
  if (options.engine == Engine::kApprox && explain_analyze) {
    return Fail("--engine approx cannot be combined with --explain-analyze");
  }
  if (explain && !batch_path.empty()) {
    return Fail("--explain needs a single statement; "
                "use --explain-analyze with --batch");
  }

  MetricsSink metrics_sink;
  TraceSink trace_sink;
  ExplainSink explain_sink;
  ProgressSink progress_sink;
  OpenMetricsSeries om_series;
  if (!metrics_path.empty() || stats) options.metrics = &metrics_sink;
  // The metrics document embeds per-phase wall time, so tracing is on for
  // either export.
  if (!trace_path.empty() || !metrics_path.empty()) options.trace = &trace_sink;
  if (explain_analyze) {
    options.explain = &explain_sink;
    // Per-node counters are deltas of the flat sink, so analysis always
    // installs it.
    options.metrics = &metrics_sink;
  }
  // The exporter's counter/histogram families come off the metrics sink, so
  // --openmetrics implies it; progress gauges need the progress sink.
  if (!openmetrics_path.empty()) options.metrics = &metrics_sink;
  if (show_progress || options.deadline.armed() || !openmetrics_path.empty()) {
    options.progress = &progress_sink;
  }
  if (!flight_path.empty()) FlightRecorder::Global().Enable();
  // Soft expiry: note it on stderr and leave a postmortem (the statement
  // keeps running; the callback fires at most once per statement).
  progress_sink.SetSoftExpiryCallback([&progress_sink] {
    std::fprintf(stderr, "focq_cli: soft deadline expired after %lld ms: %s\n",
                 static_cast<long long>(progress_sink.ElapsedMs()),
                 progress_sink.ToString().c_str());
    FlightRecorder& recorder = FlightRecorder::Global();
    if (recorder.enabled()) {
      std::fprintf(stderr, "%s", recorder.Dump().c_str());
    }
  });

  Result<Structure> structure = [&]() -> Result<Structure> {
    if (!edges) return ReadStructureFile(path);
    std::ifstream in(path);
    if (!in) return Status::NotFound("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return ReadEdgeList(buffer.str());
  }();
  if (!structure.ok()) return Fail(structure.status().ToString());
  std::printf("structure: %zu elements, ||A|| = %zu\n",
              structure->Order(), structure->SizeNorm());

  // --update specs mutate the loaded structure before any evaluation (and
  // before the batch Session is constructed, so its caches are built against
  // the updated structure).
  for (const std::string& spec : update_specs) {
    Result<TupleUpdate> update = ParseUpdate(spec, structure->signature());
    if (!update.ok()) {
      return Fail("--update '" + spec + "': " + update.status().ToString());
    }
    Result<bool> changed = ApplyToStructure(&structure.value(), *update);
    if (!changed.ok()) {
      return Fail("--update '" + spec + "': " + changed.status().ToString());
    }
    std::printf("update: %s (%s)\n", spec.c_str(),
                *changed ? "applied" : "noop");
  }

  auto print_stats = [&](const Result<EvalPlan>& plan) {
    if (!stats || !plan.ok()) return;
    EvalPlan::Stats s = plan->ComputeStats();
    std::printf(
        "plan: %zu layers, %zu marker relations (%zu fallback), "
        "%zu basic cl-terms, max width %d, max radius %u\n",
        s.num_layers, s.num_relations, s.num_fallback_relations,
        s.num_basic_cl_terms, s.max_width, s.max_radius);
  };

  // Shared epilogue: pool statistics under --stats, JSON exports when asked.
  auto finish = [&](int rc) {
    if (explain_analyze) {
      ExplainReport report = explain_sink.Snapshot();
      std::printf("%s", report.ToText().c_str());
      if (!explain_json_path.empty() &&
          !WriteFile(explain_json_path, ComposeExplainJson(report))) {
        return Fail("cannot write '" + explain_json_path + "'");
      }
    }
    if (stats) {
      for (const auto& [name, value] : metrics_sink.Snapshot().counters) {
        std::printf("metric %s = %lld\n", name.c_str(),
                    static_cast<long long>(value));
      }
      ThreadPool::Stats pool = ThreadPool::Shared().GetStats();
      std::printf("pool: %d workers, %lld tasks submitted, "
                  "%lld executed, %lld steals, busy %.3f ms\n",
                  ThreadPool::Shared().num_workers(),
                  static_cast<long long>(pool.tasks_submitted),
                  static_cast<long long>(pool.tasks_executed),
                  static_cast<long long>(pool.steals),
                  static_cast<double>(pool.busy_ns) / 1e6);
    }
    if (!metrics_path.empty()) {
      std::string json = ComposeMetricsJson(metrics_sink.Snapshot(),
                                            trace_sink);
      if (!WriteFile(metrics_path, json)) {
        return Fail("cannot write '" + metrics_path + "'");
      }
    }
    if (!trace_path.empty()) {
      if (!WriteFile(trace_path, ComposeTraceJson(trace_sink))) {
        return Fail("cannot write '" + trace_path + "'");
      }
    }
    if (show_progress) {
      std::printf("progress: %s (%lld ms)\n", progress_sink.ToString().c_str(),
                  static_cast<long long>(progress_sink.ElapsedMs()));
    }
    if (!openmetrics_path.empty()) {
      // Single-statement runs never routed through a sampling Session; take
      // the one end-of-run sample here.
      if (om_series.sample_count() == 0) {
        om_series.Sample(UnixMillisNow(), metrics_sink.Snapshot(),
                         options.progress);
      }
      if (!WriteFileRaw(openmetrics_path, om_series.Render())) {
        return Fail("cannot write '" + openmetrics_path + "'");
      }
    }
    if (!flight_path.empty()) {
      if (!WriteFile(flight_path, FlightRecorder::Global().Dump())) {
        return Fail("cannot write '" + flight_path + "'");
      }
    }
    return rc;
  };

  // Plain EXPLAIN: compile, materialise the plan tree, print, done — the
  // structure is never touched beyond its signature.
  if (explain) {
    Result<EvalPlan> plan = [&]() -> Result<EvalPlan> {
      if (mode == "--term") {
        Result<Term> term = ParseTerm(query_text);
        if (!term.ok()) return term.status();
        Status symbols = CheckSymbols(*term, structure->signature());
        if (!symbols.ok()) return symbols;
        return CompileTerm(*term, structure->signature());
      }
      Result<Formula> formula = ParseFormula(query_text);
      if (!formula.ok()) return formula.status();
      Status symbols = CheckSymbols(*formula, structure->signature());
      if (!symbols.ok()) return symbols;
      return CompileFormula(*formula, structure->signature());
    }();
    if (!plan.ok()) return Fail(plan.status().ToString());
    print_stats(plan);
    RegisterPlanNodes(&explain_sink, *plan, -1);
    ExplainReport report = explain_sink.Snapshot();
    std::printf("%s", report.ToText().c_str());
    if (!explain_json_path.empty() &&
        !WriteFile(explain_json_path, ComposeExplainJson(report))) {
      return Fail("cannot write '" + explain_json_path + "'");
    }
    return 0;
  }

  if (!batch_path.empty()) {
    std::ifstream batch_in(batch_path);
    if (!batch_in) return Fail("cannot open '" + batch_path + "'");
    // One Session for the whole file: every statement shares the context's
    // Gaifman graph, covers and sphere typings (README, "Batch workloads").
    // Constructed over the mutable structure so "update" lines can repair
    // the cached artifacts in place instead of discarding them.
    Session session(&structure.value(), options);
    // One timestamped OpenMetrics sample per statement: the batch becomes a
    // scrapeable time series of the session's cumulative state.
    if (!openmetrics_path.empty()) {
      session.EnableOpenMetricsSampling(&om_series);
    }
    int evaluated = 0;
    int failed = [&] {
      // Root span closed before finish() reads the sink.
      ScopedSpan root(options.trace, "batch_eval");
      std::string line;
      int lineno = 0;
      int errors = 0;
      // Per-statement progress snapshot under --progress (counters are
      // cumulative across the batch, like the metrics sink).
      auto line_progress = [&] {
        if (show_progress) {
          std::printf("line %d: progress: %s\n", lineno,
                      progress_sink.ToString().c_str());
        }
      };
      while (std::getline(batch_in, line)) {
        ++lineno;
        std::size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#') continue;
        std::size_t split = line.find_first_of(" \t", start);
        std::string kind = line.substr(start, split - start);
        std::string text =
            split == std::string::npos ? "" : line.substr(split + 1);
        // Statement boundaries anchor the flight-recorder timeline.
        FlightRecord(FlightEventKind::kMark, kind, lineno);
        auto report = [&](const Status& status) {
          std::printf("line %d: %s: error: %s\n", lineno, kind.c_str(),
                      status.ToString().c_str());
          ++errors;
        };
        if (kind != "check" && kind != "count" && kind != "term" &&
            kind != "update") {
          Fail("line " + std::to_string(lineno) +
               ": expected 'check', 'count', 'term' or 'update', got '" +
               kind + "'");
          return -1;
        }
        // Every statement kind counts towards the summary totals — update
        // lines included, so "N statements, M failed" always has M <= N
        // (a batch of only failing updates used to report "0 statements,
        // 3 failed").
        ++evaluated;
        if (kind == "update") {
          Result<TupleUpdate> update =
              ParseUpdate(text, structure->signature());
          if (!update.ok()) { Fail(update.status().ToString()); return -1; }
          Result<UpdateStats> applied = session.ApplyUpdate(*update);
          if (!applied.ok()) { report(applied.status()); continue; }
          std::printf("line %d: update: %s\n", lineno,
                      applied->changed ? "applied" : "noop");
          continue;
        }
        if (kind == "term") {
          Result<Term> term = ParseTerm(text);
          if (!term.ok()) { Fail(term.status().ToString()); return -1; }
          Status symbols = CheckSymbols(*term, structure->signature());
          if (!symbols.ok()) { Fail(symbols.ToString()); return -1; }
          Result<CountInt> value = session.EvaluateGroundTerm(*term);
          if (!value.ok()) { report(value.status()); line_progress(); continue; }
          std::printf("line %d: term: %lld\n", lineno,
                      static_cast<long long>(*value));
          line_progress();
          continue;
        }
        Result<Formula> formula = ParseFormula(text);
        if (!formula.ok()) { Fail(formula.status().ToString()); return -1; }
        Status symbols = CheckSymbols(*formula, structure->signature());
        if (!symbols.ok()) { Fail(symbols.ToString()); return -1; }
        if (kind == "check") {
          Result<bool> holds = session.ModelCheck(*formula);
          if (!holds.ok()) { report(holds.status()); line_progress(); continue; }
          std::printf("line %d: check: %s\n", lineno,
                      *holds ? "true" : "false");
        } else {
          Result<CountInt> count = session.CountSolutions(*formula);
          if (!count.ok()) { report(count.status()); line_progress(); continue; }
          std::printf("line %d: count: %lld\n", lineno,
                      static_cast<long long>(*count));
        }
        line_progress();
      }
      return errors;
    }();
    if (failed < 0) return 1;  // malformed input: diagnostic already printed
    EvalContext::CacheStats cache = session.context().cache_stats();
    std::printf("batch: %d statements, %d failed; cache %lld hits, "
                "%lld misses, ~%lld bytes\n",
                evaluated, failed, static_cast<long long>(cache.hits),
                static_cast<long long>(cache.misses),
                static_cast<long long>(cache.bytes));
    return finish(failed == 0 ? 0 : 1);
  }

  if (mode == "--term") {
    Result<Term> term = ParseTerm(query_text);
    if (!term.ok()) return Fail(term.status().ToString());
    // Unknown symbols / arity mismatches would abort inside the evaluators;
    // reject them here with a clean diagnostic instead.
    Status symbols = CheckSymbols(*term, structure->signature());
    if (!symbols.ok()) return Fail(symbols.ToString());
    print_stats(CompileTerm(*term, structure->signature()));
    // A root span per run so phase_ns carries an end-to-end total; closed
    // before finish() reads the sink (open spans are excluded from exports).
    Result<CountInt> value = [&] {
      focq::ScopedSpan root(options.trace, "query_eval");
      return EvaluateGroundTerm(*term, *structure, options);
    }();
    // Deadline expiries and other evaluation failures still flush the
    // observability exports — that postmortem is what they are for.
    if (!value.ok()) return finish(Fail(value.status().ToString()));
    std::printf("value: %lld\n", static_cast<long long>(*value));
    return finish(0);
  }

  Result<Formula> formula = ParseFormula(query_text);
  if (!formula.ok()) return Fail(formula.status().ToString());
  Status symbols = CheckSymbols(*formula, structure->signature());
  if (!symbols.ok()) return Fail(symbols.ToString());
  print_stats(CompileFormula(*formula, structure->signature()));
  if (mode == "--check") {
    Result<bool> holds = [&] {
      focq::ScopedSpan root(options.trace, "query_eval");
      return ModelCheck(*formula, *structure, options);
    }();
    if (!holds.ok()) return finish(Fail(holds.status().ToString()));
    std::printf("result: %s\n", *holds ? "true" : "false");
    return finish(*holds ? 0 : 3);  // shell-friendly: 3 = "false", 0 = "true"
  }
  Result<CountInt> count = [&] {
    focq::ScopedSpan root(options.trace, "query_eval");
    return CountSolutions(*formula, *structure, options);
  }();
  if (!count.ok()) return finish(Fail(count.status().ToString()));
  std::printf("solutions: %lld\n", static_cast<long long>(*count));
  return finish(0);
}
