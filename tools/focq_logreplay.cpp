// focq_logreplay: turns a focq_serve structured query log back into the
// serial statement stream it was served as, re-executes it, and verifies
// every result digest bit for bit (DESIGN.md §3g, "Request lifecycle &
// query log").
//
//   focq_logreplay <structure-file> <query-log.jsonl> [--edges]
//                  [--engine naive|local|cover|approx] [--threads N]
//                  [--eps E] [--delta D] [--approx-seed S]
//                  [--approx-stratify] [--batch-out FILE] [--verbose]
//
// The log records carry the server's global admission sequence numbers, so
// sorting them by seq reconstructs exactly the serial order the multi-client
// interleaving is bit-identical to (the §3g contract). The tool replays that
// order through one read-write Session over a fresh load of the structure —
// the same statement semantics as the server's execution paths and focq_cli
// --batch — digests each response text with Fnv1a64 and compares against the
// logged digest.
//
//   --batch-out FILE  also write the reconstructed stream in the focq_cli
//                     --batch grammar ("<kind> <text>" per line, seq order)
//   --verbose         print one line per record instead of only mismatches
//   --engine etc.     must match the serving configuration, or counts that
//                     depend on the engine contract (approx) will differ
//
// Caveats, by construction of the log:
//   * records with deadline=true are skipped (a deadline expiry depends on
//     wall clock, so the error text is not reproducible);
//   * a --slow-ms log is a *subset* of the served stream: updates that were
//     filtered out change structure state for later reads, so replay of a
//     filtered log verifies only when no update was filtered (the tool
//     still replays and reports whatever mismatches follow);
//   * seq gaps are normal — pings and shutdown frames consume sequence
//     numbers but are never logged.
//
// Exits 0 iff every verified digest matched.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "focq/core/api.h"
#include "focq/logic/fragment.h"
#include "focq/logic/parser.h"
#include "focq/obs/querylog.h"
#include "focq/structure/io.h"
#include "focq/structure/update.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "focq_logreplay: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: focq_logreplay <structure-file> <query-log.jsonl> [--edges]\n"
      "                      [--engine naive|local|cover|approx] "
      "[--threads N]\n"
      "                      [--eps E] [--delta D] [--approx-seed S] "
      "[--approx-stratify]\n"
      "                      [--batch-out FILE] [--verbose]\n");
  return 2;
}

bool ParseU64(const std::string& text, std::uint64_t* out) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  try {
    std::size_t pos = 0;
    *out = std::stoull(text, &pos);
    return pos == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

// The server's statement semantics (= focq_cli --batch, = the serial oracle
// of serve_server_test): one Session, errors render as Status::ToString().
std::string Replay(focq::Session* session, const focq::QueryLogRecord& r) {
  using namespace focq;
  const Signature& sig = session->structure().signature();
  if (r.kind == "update") {
    Result<TupleUpdate> update = ParseUpdate(r.text, sig);
    if (!update.ok()) return update.status().ToString();
    Result<UpdateStats> applied = session->ApplyUpdate(*update);
    if (!applied.ok()) return applied.status().ToString();
    return applied->changed ? "applied" : "noop";
  }
  if (r.kind == "term") {
    Result<Term> term = ParseTerm(r.text);
    if (!term.ok()) return term.status().ToString();
    if (Status symbols = CheckSymbols(*term, sig); !symbols.ok()) {
      return symbols.ToString();
    }
    Result<CountInt> value = session->EvaluateGroundTerm(*term);
    if (!value.ok()) return value.status().ToString();
    return std::to_string(static_cast<long long>(*value));
  }
  // check / count
  Result<Formula> formula = ParseFormula(r.text);
  if (!formula.ok()) return formula.status().ToString();
  if (Status symbols = CheckSymbols(*formula, sig); !symbols.ok()) {
    return symbols.ToString();
  }
  if (r.kind == "check") {
    Result<bool> holds = session->ModelCheck(*formula);
    if (!holds.ok()) return holds.status().ToString();
    return *holds ? "true" : "false";
  }
  Result<CountInt> count = session->CountSolutions(*formula);
  if (!count.ok()) return count.status().ToString();
  return std::to_string(static_cast<long long>(*count));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace focq;
  if (argc < 3) return Usage();
  const std::string structure_path = argv[1];
  const std::string log_path = argv[2];

  bool edges = false, verbose = false;
  std::string batch_out;
  EvalOptions eval;
  std::string engine_name = "local";
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto parse_prob = [](const char* text, double* out) -> bool {
      if (text == nullptr) return false;
      try {
        std::size_t pos = 0;
        *out = std::stod(text, &pos);
        return pos == std::string(text).size();
      } catch (const std::exception&) {
        return false;
      }
    };
    if (arg == "--edges") {
      edges = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return Usage();
      engine_name = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage();
      try {
        std::size_t pos = 0;
        eval.num_threads = std::stoi(v, &pos);
        if (pos != std::string(v).size() || eval.num_threads < 0) {
          return Fail("--threads expects a non-negative integer");
        }
      } catch (const std::exception&) {
        return Fail("--threads expects a non-negative integer");
      }
    } else if (arg == "--eps") {
      if (!parse_prob(next(), &eval.approx.eps)) {
        return Fail("--eps expects a number in (0, 1)");
      }
    } else if (arg == "--delta") {
      if (!parse_prob(next(), &eval.approx.delta)) {
        return Fail("--delta expects a number in (0, 1)");
      }
    } else if (arg == "--approx-seed") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &eval.approx.seed)) {
        return Fail("--approx-seed expects a non-negative integer");
      }
    } else if (arg == "--approx-stratify") {
      eval.approx.stratify = true;
    } else if (arg == "--batch-out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      batch_out = v;
    } else if (arg.rfind("--batch-out=", 0) == 0) {
      batch_out = arg.substr(std::string("--batch-out=").size());
    } else {
      return Usage();
    }
  }
  if (engine_name == "naive") {
    eval.engine = Engine::kNaive;
  } else if (engine_name == "local") {
    eval.engine = Engine::kLocal;
  } else if (engine_name == "cover") {
    eval.engine = Engine::kLocal;
    eval.term_engine = TermEngine::kSparseCover;
  } else if (engine_name == "approx") {
    eval.engine = Engine::kApprox;
  } else {
    return Fail("unknown engine '" + engine_name + "'");
  }

  // ---- parse the log -------------------------------------------------------
  std::ifstream in(log_path);
  if (!in) return Fail("cannot open '" + log_path + "'");
  std::vector<QueryLogRecord> records;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    Result<QueryLogRecord> record = ParseQueryLogLine(line);
    if (!record.ok()) {
      return Fail("line " + std::to_string(lineno) + ": " +
                  record.status().ToString());
    }
    records.push_back(std::move(record).value());
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const QueryLogRecord& a, const QueryLogRecord& b) {
                     return a.seq < b.seq;
                   });

  if (!batch_out.empty()) {
    std::ofstream out(batch_out, std::ios::trunc);
    if (!out) return Fail("cannot write '" + batch_out + "'");
    out << "# reconstructed from " << log_path << " in admission-seq order\n";
    for (const QueryLogRecord& r : records) {
      out << r.kind << " " << r.text << "\n";
    }
  }

  // ---- load the structure and replay ---------------------------------------
  Result<Structure> structure = [&]() -> Result<Structure> {
    if (!edges) return ReadStructureFile(structure_path);
    std::ifstream sf(structure_path);
    if (!sf) return Status::NotFound("cannot open '" + structure_path + "'");
    std::ostringstream buffer;
    buffer << sf.rdbuf();
    return ReadEdgeList(buffer.str());
  }();
  if (!structure.ok()) return Fail(structure.status().ToString());

  Session session(&structure.value(), eval);
  std::size_t verified = 0, mismatches = 0, skipped = 0;
  for (const QueryLogRecord& r : records) {
    const std::string text = Replay(&session, r);
    if (r.deadline_exceeded) {
      // Wall-clock dependent outcome; the statement was still replayed (an
      // update may have partially applied state the later stream needs).
      ++skipped;
      continue;
    }
    const std::uint64_t digest = Fnv1a64(text);
    if (digest == r.digest) {
      ++verified;
      if (verbose) {
        std::printf("seq %llu %s: ok (%s)\n",
                    static_cast<unsigned long long>(r.seq), r.kind.c_str(),
                    HexU64(digest).c_str());
      }
    } else {
      ++mismatches;
      std::printf("seq %llu %s: DIGEST MISMATCH logged %s replayed %s\n",
                  static_cast<unsigned long long>(r.seq), r.kind.c_str(),
                  HexU64(r.digest).c_str(), HexU64(digest).c_str());
      std::printf("  statement: %s %s\n", r.kind.c_str(), r.text.c_str());
      std::printf("  replayed result: %s\n", text.c_str());
    }
  }
  std::printf(
      "replayed %zu records: %zu verified, %zu skipped (deadline), "
      "%zu mismatches\n",
      records.size(), verified, skipped, mismatches);
  return mismatches == 0 ? 0 : 1;
}
