#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown docs.

Scans the given markdown files (or the default doc set) for inline links and
image references. External links (http/https/mailto) are ignored; every
relative target — optionally carrying a #fragment — must resolve to an
existing file or directory relative to the file that references it. CI runs
this so a moved or renamed file cannot silently orphan the documentation
that points at it.

Usage: tools/check_doc_links.py [file.md ...]
Exit code 0 when every relative link resolves, 1 otherwise.
"""

import os
import re
import sys

DEFAULT_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "tests/corpus/README.md",
]

# Inline markdown links and images: [text](target) / ![alt](target).
# Reference-style definitions: [label]: target
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s*(\S+)", re.MULTILINE)

# Fenced code blocks must not contribute links: `[i](j)` in a code sample is
# array indexing, not a reference.
FENCE = re.compile(r"```.*?```", re.DOTALL)


def targets_in(text):
    text = FENCE.sub("", text)
    for match in INLINE_LINK.finditer(text):
        yield match.group(1)
    for match in REF_DEF.finditer(text):
        yield match.group(1)


def is_external(target):
    return target.startswith(("http://", "https://", "mailto:", "#"))


def check_file(path):
    """Returns a list of (target, reason) dead links in `path`."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    dead = []
    base = os.path.dirname(path)
    for target in targets_in(text):
        if is_external(target):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = os.path.normpath(os.path.join(base, relative))
        if not os.path.exists(resolved):
            dead.append((target, f"{resolved} does not exist"))
    return dead


def main(argv):
    files = argv[1:] or DEFAULT_FILES
    failures = 0
    for path in files:
        if not os.path.exists(path):
            print(f"check_doc_links: {path}: file not found", file=sys.stderr)
            failures += 1
            continue
        for target, reason in check_file(path):
            print(f"check_doc_links: {path}: dead link '{target}' ({reason})",
                  file=sys.stderr)
            failures += 1
    if failures:
        print(f"check_doc_links: {failures} dead link(s)", file=sys.stderr)
        return 1
    print(f"check_doc_links: OK ({len(files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
