// focq_serve: the persistent multi-tenant query server (DESIGN.md §3g) and
// its scripting client.
//
// Server mode:
//   focq_serve <structure-file> [--edges] [--port N] [--metrics-port N]
//              [--engine naive|local|cover|approx] [--threads N]
//              [--eps E] [--delta D] [--approx-seed S] [--approx-stratify]
//              [--deadline-ms N] [--query-log FILE] [--slow-ms N]
//              [--trace-json FILE] [--flight-record FILE]
//
//   Loads the structure, binds 127.0.0.1 (port 0 = ephemeral) and serves the
//   length-prefixed binary protocol of src/focq/serve/protocol.h: concurrent
//   clients submit check/count/term/update statements in the --batch
//   grammar; reads share one EvalContext under snapshot semantics and fan
//   out per cover cluster on the shared work-stealing pool; an update drains
//   in-flight reads, repairs the cached artifacts incrementally and
//   readmits. Responses carry the global admission sequence number: for any
//   interleaving, replaying all statements serially in seq order through one
//   Session reproduces every response bit for bit.
//
//   Prints "serving on 127.0.0.1:<port>" (and "metrics on ..." when
//   --metrics-port is given; that port answers HTTP scrapes with an
//   OpenMetrics exposition) and runs until a client sends --shutdown.
//
//   --port         query port (default 0: ephemeral, printed at startup)
//   --metrics-port OpenMetrics scrape port (default off; 0 = ephemeral)
//   --deadline-ms  hard per-request budget; an expired request answers
//                  kDeadlineExceeded without affecting other clients
//   --query-log    structured query log: one JSONL record per served
//                  statement (schema: src/focq/obs/querylog.h), written
//                  asynchronously, replayable with tools/focq_logreplay
//   --slow-ms      with --query-log: record only requests slower than N ms
//   --trace-json   request-lifecycle trace, chrome://tracing JSON written at
//                  shutdown: decode/queue/gate/exec/write spans per request
//                  on reader / dispatcher / pool-worker lanes, stitched by
//                  trace id
//   --flight-record enable the flight recorder; its ring (connection
//                  open/close, queue backpressure, update drains, phases) is
//                  dumped to FILE at shutdown
//   --engine, --threads, --eps, --delta, --approx-seed, --approx-stratify:
//                  as in focq_cli, applied to every request
//
// Client mode:
//   focq_serve --client PORT [--batch FILE] [--explain] [--ping]
//              [--shutdown] [--trace-base N]
//
//   --trace-base N stamps request i with client-supplied trace id N+i (the
//   kRequestFlagTraceId protocol flag); without it the server assigns ids.
//
//   Reads statements from FILE (the focq_cli --batch grammar), pipelines
//   them all over one connection, and prints one line per response in
//   arrival order:
//     seq <seq> req <id> <kind>: <result text>
//     seq <seq> req <id> <kind>: error: <diagnostic>
//   The seq column is what the serve-smoke harness sorts on to rebuild the
//   serial replay order across many concurrent clients. --ping sends a ping
//   first; --shutdown asks the server to exit after the batch. Exits 0 iff
//   every response was ok.
#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "focq/obs/recorder.h"
#include "focq/serve/protocol.h"
#include "focq/serve/server.h"
#include "focq/serve/socket_util.h"
#include "focq/structure/io.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "focq_serve: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: focq_serve <structure-file> [--edges] [--port N] "
      "[--metrics-port N]\n"
      "                  [--engine naive|local|cover|approx] [--threads N]\n"
      "                  [--eps E] [--delta D] [--approx-seed S] "
      "[--approx-stratify]\n"
      "                  [--deadline-ms N] [--query-log FILE] [--slow-ms N]\n"
      "                  [--trace-json FILE] [--flight-record FILE]\n"
      "       focq_serve --client PORT [--batch FILE] [--explain] [--ping] "
      "[--shutdown]\n"
      "                  [--trace-base N]\n");
  return 2;
}

// Digit-only unsigned parse: std::stoull alone would accept a leading '-'
// and wrap (the focq_cli --approx-seed bug this PR fixes).
bool ParseU64(const std::string& text, std::uint64_t* out) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  try {
    std::size_t pos = 0;
    *out = std::stoull(text, &pos);
    return pos == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool ParseI64(const std::string& text, std::int64_t* out) {
  try {
    std::size_t pos = 0;
    *out = std::stoll(text, &pos);
    return pos == text.size() && *out >= 0;
  } catch (const std::exception&) {
    return false;
  }
}

struct Statement {
  focq::serve::FrameKind kind;
  std::string text;
};

// The focq_cli --batch line grammar: blank and '#' lines skipped, otherwise
// "check|count|term|update <text>".
int ReadStatements(const std::string& path, std::vector<Statement>* out) {
  std::ifstream in(path);
  if (!in) return Fail("cannot open '" + path + "'");
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    std::size_t split = line.find_first_of(" \t", start);
    std::string word = line.substr(start, split - start);
    std::optional<focq::serve::FrameKind> kind =
        focq::serve::StatementKindFromWord(word);
    if (!kind.has_value()) {
      return Fail("line " + std::to_string(lineno) +
                  ": expected 'check', 'count', 'term' or 'update', got '" +
                  word + "'");
    }
    std::string text =
        split == std::string::npos ? "" : line.substr(split + 1);
    out->push_back({*kind, text});
  }
  return 0;
}

int RunClient(std::uint16_t port, const std::string& batch_path,
              bool explain, bool ping, bool shutdown, bool has_trace_base,
              std::uint64_t trace_base) {
  using namespace focq::serve;
  std::vector<Statement> statements;
  if (ping) statements.push_back({FrameKind::kPing, ""});
  if (!batch_path.empty()) {
    if (int rc = ReadStatements(batch_path, &statements); rc != 0) return rc;
  }
  if (shutdown) statements.push_back({FrameKind::kShutdown, ""});
  if (statements.empty()) return Fail("nothing to send (see --batch)");

  focq::Result<int> fd = ConnectLoopback(port);
  if (!fd.ok()) return Fail(fd.status().ToString());

  // Pipeline everything: one write, then drain responses. Request ids are
  // 1-based statement indices, so responses (which may arrive out of order)
  // can be labelled with their statement kind.
  std::string wire;
  std::map<std::uint32_t, FrameKind> kinds;
  std::uint32_t next_id = 1;
  for (const Statement& statement : statements) {
    Request request;
    request.kind = statement.kind;
    request.id = next_id++;
    if (explain && IsReadStatement(statement.kind)) {
      request.flags |= kRequestFlagExplain;
    }
    if (has_trace_base) {
      request.flags |= kRequestFlagTraceId;
      request.trace_id = trace_base + request.id;
    }
    request.text = statement.text;
    kinds[request.id] = request.kind;
    AppendRequestFrame(&wire, request);
  }
  if (focq::Status sent = SendAll(*fd, wire); !sent.ok()) {
    CloseFd(*fd);
    return Fail(sent.ToString());
  }

  FrameDecoder decoder;
  std::size_t received = 0;
  int failures = 0;
  while (received < statements.size()) {
    focq::Result<std::string> chunk = RecvSome(*fd);
    if (!chunk.ok()) {
      CloseFd(*fd);
      return Fail(chunk.status().ToString());
    }
    if (chunk->empty()) {
      CloseFd(*fd);
      return Fail("server closed the connection after " +
                  std::to_string(received) + " of " +
                  std::to_string(statements.size()) + " responses");
    }
    decoder.Feed(*chunk);
    for (;;) {
      focq::Result<std::optional<Frame>> next = decoder.Next();
      if (!next.ok()) {
        CloseFd(*fd);
        return Fail("response stream: " + next.status().ToString());
      }
      if (!next->has_value()) break;
      focq::Result<Response> response = DecodeResponse(**next);
      if (!response.ok()) {
        CloseFd(*fd);
        return Fail("response frame: " + response.status().ToString());
      }
      if (response->id == 0) {
        // Connection-level protocol diagnostic (not tied to a request).
        std::printf("protocol error: %s\n", response->text.c_str());
        ++failures;
        continue;
      }
      ++received;
      auto it = kinds.find(response->id);
      const char* kind =
          it == kinds.end() ? "unknown" : FrameKindName(it->second);
      if (response->ok) {
        std::printf("seq %llu req %u %s: %s\n",
                    static_cast<unsigned long long>(response->seq),
                    response->id, kind, response->text.c_str());
      } else {
        std::printf("seq %llu req %u %s: error: %s\n",
                    static_cast<unsigned long long>(response->seq),
                    response->id, kind, response->text.c_str());
        ++failures;
      }
    }
  }
  CloseFd(*fd);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace focq;
  if (argc < 2) return Usage();

  // ---- client mode ---------------------------------------------------------
  if (std::string(argv[1]) == "--client") {
    if (argc < 3) return Usage();
    std::uint64_t port = 0;
    if (!ParseU64(argv[2], &port) || port == 0 || port > 65535) {
      return Fail("--client expects a port number");
    }
    std::string batch_path;
    bool explain = false, ping = false, shutdown = false;
    bool has_trace_base = false;
    std::uint64_t trace_base = 0;
    for (int i = 3; i < argc; ++i) {
      std::string arg = argv[i];
      auto next = [&]() -> const char* {
        return i + 1 < argc ? argv[++i] : nullptr;
      };
      if (arg == "--batch") {
        const char* v = next();
        if (v == nullptr) return Usage();
        batch_path = v;
      } else if (arg.rfind("--batch=", 0) == 0) {
        batch_path = arg.substr(std::string("--batch=").size());
      } else if (arg == "--explain") {
        explain = true;
      } else if (arg == "--ping") {
        ping = true;
      } else if (arg == "--shutdown") {
        shutdown = true;
      } else if (arg == "--trace-base") {
        const char* v = next();
        if (v == nullptr || !ParseU64(v, &trace_base)) {
          return Fail("--trace-base expects a non-negative integer");
        }
        has_trace_base = true;
      } else if (arg.rfind("--trace-base=", 0) == 0) {
        if (!ParseU64(arg.substr(std::string("--trace-base=").size()),
                      &trace_base)) {
          return Fail("--trace-base expects a non-negative integer");
        }
        has_trace_base = true;
      } else {
        return Usage();
      }
    }
    return RunClient(static_cast<std::uint16_t>(port), batch_path, explain,
                     ping, shutdown, has_trace_base, trace_base);
  }

  // ---- server mode ---------------------------------------------------------
  std::string path = argv[1];
  bool edges = false;
  serve::ServeOptions serve_options;
  std::string engine_name = "local";
  std::string threads_text = "1";
  std::string eps_text = "0.1", delta_text = "0.01", approx_seed_text = "1";
  std::string port_text = "0", metrics_port_text, deadline_text = "0";
  std::string slow_ms_text = "0";
  std::string trace_json_path, flight_record_path;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--edges") {
      edges = true;
    } else if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return Usage();
      engine_name = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage();
      threads_text = v;
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads_text = arg.substr(std::string("--threads=").size());
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage();
      port_text = v;
    } else if (arg.rfind("--port=", 0) == 0) {
      port_text = arg.substr(std::string("--port=").size());
    } else if (arg == "--metrics-port") {
      const char* v = next();
      if (v == nullptr) return Usage();
      metrics_port_text = v;
    } else if (arg.rfind("--metrics-port=", 0) == 0) {
      metrics_port_text = arg.substr(std::string("--metrics-port=").size());
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return Usage();
      deadline_text = v;
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      deadline_text = arg.substr(std::string("--deadline-ms=").size());
    } else if (arg == "--query-log") {
      const char* v = next();
      if (v == nullptr) return Usage();
      serve_options.query_log_path = v;
    } else if (arg.rfind("--query-log=", 0) == 0) {
      serve_options.query_log_path =
          arg.substr(std::string("--query-log=").size());
    } else if (arg == "--slow-ms") {
      const char* v = next();
      if (v == nullptr) return Usage();
      slow_ms_text = v;
    } else if (arg.rfind("--slow-ms=", 0) == 0) {
      slow_ms_text = arg.substr(std::string("--slow-ms=").size());
    } else if (arg == "--trace-json") {
      const char* v = next();
      if (v == nullptr) return Usage();
      trace_json_path = v;
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      trace_json_path = arg.substr(std::string("--trace-json=").size());
    } else if (arg == "--flight-record") {
      const char* v = next();
      if (v == nullptr) return Usage();
      flight_record_path = v;
    } else if (arg.rfind("--flight-record=", 0) == 0) {
      flight_record_path = arg.substr(std::string("--flight-record=").size());
    } else if (arg == "--eps") {
      const char* v = next();
      if (v == nullptr) return Usage();
      eps_text = v;
    } else if (arg == "--delta") {
      const char* v = next();
      if (v == nullptr) return Usage();
      delta_text = v;
    } else if (arg == "--approx-seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      approx_seed_text = v;
    } else if (arg == "--approx-stratify") {
      serve_options.eval.approx.stratify = true;
    } else {
      return Usage();
    }
  }

  try {
    std::size_t pos = 0;
    serve_options.eval.num_threads = std::stoi(threads_text, &pos);
    if (pos != threads_text.size() || serve_options.eval.num_threads < 0) {
      return Fail("--threads expects a non-negative integer");
    }
  } catch (const std::exception&) {
    return Fail("--threads expects a non-negative integer");
  }
  std::uint64_t port = 0;
  if (!ParseU64(port_text, &port) || port > 65535) {
    return Fail("--port expects a port number");
  }
  serve_options.port = static_cast<std::uint16_t>(port);
  if (!metrics_port_text.empty()) {
    std::uint64_t metrics_port = 0;
    if (!ParseU64(metrics_port_text, &metrics_port) || metrics_port > 65535) {
      return Fail("--metrics-port expects a port number");
    }
    serve_options.metrics_port = static_cast<int>(metrics_port);
  }
  if (!ParseI64(deadline_text, &serve_options.deadline_ms)) {
    return Fail("--deadline-ms expects a non-negative integer");
  }
  if (!ParseI64(slow_ms_text, &serve_options.slow_ms)) {
    return Fail("--slow-ms expects a non-negative integer");
  }
  if (serve_options.slow_ms > 0 && serve_options.query_log_path.empty()) {
    return Fail("--slow-ms requires --query-log");
  }
  if (engine_name == "naive") {
    serve_options.eval.engine = Engine::kNaive;
  } else if (engine_name == "local") {
    serve_options.eval.engine = Engine::kLocal;
  } else if (engine_name == "cover") {
    serve_options.eval.engine = Engine::kLocal;
    serve_options.eval.term_engine = TermEngine::kSparseCover;
  } else if (engine_name == "approx") {
    serve_options.eval.engine = Engine::kApprox;
  } else {
    return Fail("unknown engine '" + engine_name + "'");
  }
  auto parse_prob = [](const std::string& text, double* out) -> bool {
    try {
      std::size_t pos = 0;
      *out = std::stod(text, &pos);
      return pos == text.size();
    } catch (const std::exception&) {
      return false;
    }
  };
  if (!parse_prob(eps_text, &serve_options.eval.approx.eps)) {
    return Fail("--eps expects a number in (0, 1)");
  }
  if (!parse_prob(delta_text, &serve_options.eval.approx.delta)) {
    return Fail("--delta expects a number in (0, 1)");
  }
  if (!ParseU64(approx_seed_text, &serve_options.eval.approx.seed)) {
    return Fail("--approx-seed expects a non-negative integer");
  }
  if (Status valid = ValidateApproxParams(serve_options.eval.approx);
      !valid.ok()) {
    return Fail(valid.message());
  }

  Result<Structure> structure = [&]() -> Result<Structure> {
    if (!edges) return ReadStructureFile(path);
    std::ifstream in(path);
    if (!in) return Status::NotFound("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return ReadEdgeList(buffer.str());
  }();
  if (!structure.ok()) return Fail(structure.status().ToString());
  std::printf("structure: %zu elements, ||A|| = %zu\n", structure->Order(),
              structure->SizeNorm());

  TraceSink trace;
  if (!trace_json_path.empty()) serve_options.trace = &trace;
  if (!flight_record_path.empty()) FlightRecorder::Global().Enable();

  serve::Server server(&structure.value(), serve_options);
  if (Status started = server.Start(); !started.ok()) {
    return Fail(started.ToString());
  }
  // Harnesses block on these lines to learn the ephemeral ports, so flush.
  std::printf("serving on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  if (server.metrics_port() >= 0) {
    std::printf("metrics on 127.0.0.1:%u\n",
                static_cast<unsigned>(server.metrics_port()));
  }
  std::fflush(stdout);
  server.Wait();
  server.Stop();
  if (!trace_json_path.empty()) {
    std::ofstream out(trace_json_path, std::ios::trunc);
    if (!out) return Fail("cannot write '" + trace_json_path + "'");
    out << trace.ToChromeTracing() << "\n";
    std::printf("trace written to %s\n", trace_json_path.c_str());
  }
  if (!flight_record_path.empty()) {
    std::ofstream out(flight_record_path, std::ios::trunc);
    if (!out) return Fail("cannot write '" + flight_record_path + "'");
    out << FlightRecorder::Global().Dump();
    std::printf("flight record written to %s\n", flight_record_path.c_str());
  }
  std::printf("shutdown complete\n");
  return 0;
}
