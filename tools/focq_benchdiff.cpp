// focq_benchdiff — compares two Google-Benchmark JSON outputs and reports
// per-experiment time changes and focq counter drift.
//
// Usage:
//   focq_benchdiff BASE.json CURRENT.json [options]
//
// Options:
//   --time-threshold X     relative real-time change that counts as a
//                          regression/improvement (default 0.30)
//   --warn-pct P           same threshold in percent (P=25 means +25%);
//                          overrides --time-threshold. Regressions past it
//                          are reported (warn-only unless --strict)
//   --fail-pct P           hard-fail threshold in percent: any benchmark
//                          slower than base by more than P% exits 1, no
//                          --strict needed. Use a warn band below a fail
//                          band (--warn-pct 15 --fail-pct 40) to surface
//                          drift early without flaking CI on noise
//   --counter-threshold X  relative counter change worth reporting
//                          (default 0 = exact match required)
//   --format markdown|json report format (default markdown)
//   --out PATH             write the report to PATH instead of stdout
//   --strict               exit 1 when regressions past the warn threshold
//                          are found (default is warn-only: always exit 0 on
//                          a successful compare)
//
// Exit codes: 0 compare succeeded (regardless of regressions unless
// --strict/--fail-pct), 1 regressions under --strict or past --fail-pct,
// 2 usage/IO/parse errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "focq/obs/benchdiff.h"

namespace {

void PrintUsage() {
  std::cerr
      << "usage: focq_benchdiff BASE.json CURRENT.json [options]\n"
         "  --time-threshold X     relative time change = regression "
         "(default 0.30)\n"
         "  --warn-pct P           warn threshold in percent (overrides "
         "--time-threshold)\n"
         "  --fail-pct P           exit 1 when any time regresses past P% "
         "(no --strict needed)\n"
         "  --counter-threshold X  relative counter change to report "
         "(default 0)\n"
         "  --format markdown|json report format (default markdown)\n"
         "  --out PATH             write report to PATH (default stdout)\n"
         "  --strict               exit 1 when regressions are found\n";
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path;
  std::string current_path;
  std::string format = "markdown";
  std::string out_path;
  bool strict = false;
  double fail_pct = -1.0;
  focq::BenchDiffOptions options;

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "focq_benchdiff: " << argv[i] << " needs a value\n";
      std::exit(2);
    }
    return argv[i + 1];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--time-threshold") == 0) {
      options.time_threshold = std::atof(need_value(i));
      ++i;
    } else if (std::strcmp(arg, "--warn-pct") == 0) {
      options.time_threshold = std::atof(need_value(i)) / 100.0;
      ++i;
    } else if (std::strcmp(arg, "--fail-pct") == 0) {
      fail_pct = std::atof(need_value(i));
      ++i;
      if (fail_pct < 0) {
        std::cerr << "focq_benchdiff: --fail-pct expects a percentage >= 0\n";
        return 2;
      }
    } else if (std::strcmp(arg, "--counter-threshold") == 0) {
      options.counter_threshold = std::atof(need_value(i));
      ++i;
    } else if (std::strcmp(arg, "--format") == 0) {
      format = need_value(i);
      ++i;
      if (format != "markdown" && format != "json") {
        std::cerr << "focq_benchdiff: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (std::strcmp(arg, "--out") == 0) {
      out_path = need_value(i);
      ++i;
    } else if (std::strcmp(arg, "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage();
      return 0;
    } else if (arg[0] == '-') {
      std::cerr << "focq_benchdiff: unknown option '" << arg << "'\n";
      PrintUsage();
      return 2;
    } else if (base_path.empty()) {
      base_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      std::cerr << "focq_benchdiff: too many positional arguments\n";
      PrintUsage();
      return 2;
    }
  }
  if (base_path.empty() || current_path.empty()) {
    PrintUsage();
    return 2;
  }

  std::string base_text;
  std::string current_text;
  if (!ReadFile(base_path, &base_text)) {
    std::cerr << "focq_benchdiff: cannot read " << base_path << "\n";
    return 2;
  }
  if (!ReadFile(current_path, &current_text)) {
    std::cerr << "focq_benchdiff: cannot read " << current_path << "\n";
    return 2;
  }

  focq::Result<focq::BenchRun> base = focq::ParseBenchJson(base_text);
  if (!base.ok()) {
    std::cerr << "focq_benchdiff: " << base_path << ": "
              << base.status().message() << "\n";
    return 2;
  }
  focq::Result<focq::BenchRun> current = focq::ParseBenchJson(current_text);
  if (!current.ok()) {
    std::cerr << "focq_benchdiff: " << current_path << ": "
              << current.status().message() << "\n";
    return 2;
  }

  focq::BenchDiffReport report = focq::DiffBenchRuns(*base, *current, options);
  std::string rendered =
      format == "json" ? report.ToJson() : report.ToMarkdown();

  if (out_path.empty()) {
    std::cout << rendered;
    if (!rendered.empty() && rendered.back() != '\n') std::cout << "\n";
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "focq_benchdiff: cannot write " << out_path << "\n";
      return 2;
    }
    out << rendered;
  }

  int rc = 0;
  if (report.NumRegressions() > 0) {
    std::cerr << "focq_benchdiff: " << report.NumRegressions()
              << " regression(s) vs " << base_path
              << (strict ? "" : " (warn-only; pass --strict to fail)") << "\n";
    if (strict) rc = 1;
  }
  // The fail band is evaluated independently of the warn band: re-diff at
  // the stricter threshold so warn-level noise cannot flip the exit code.
  if (fail_pct >= 0) {
    focq::BenchDiffOptions fail_options = options;
    fail_options.time_threshold = fail_pct / 100.0;
    focq::BenchDiffReport fail_report =
        focq::DiffBenchRuns(*base, *current, fail_options);
    if (fail_report.NumRegressions() > 0) {
      std::cerr << "focq_benchdiff: " << fail_report.NumRegressions()
                << " regression(s) past --fail-pct " << fail_pct << "\n";
      rc = 1;
    }
  }
  return rc;
}
