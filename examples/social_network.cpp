// Example 5.4 flavour: a coloured directed graph viewed as a tiny social
// network. Red = flagged accounts, Blue = bots, Green = verified users;
// E(x, y) = "x follows y". Demonstrates counting terms over one free
// variable, numerical predicate sugar, and the full query form.
//
// Run: ./example_social_network
#include <cstdio>

#include "focq/core/api.h"
#include "focq/logic/build.h"
#include "focq/logic/printer.h"
#include "focq/structure/encode.h"
#include "focq/util/rng.h"

int main() {
  using namespace focq;

  // A synthetic follower graph: 300 accounts, preferential-attachment-ish.
  const std::size_t n = 300;
  Rng rng(7);
  std::vector<std::pair<ElemId, ElemId>> follows;
  for (ElemId v = 1; v < n; ++v) {
    std::size_t fanout = 1 + rng.NextBelow(4);
    for (std::size_t f = 0; f < fanout; ++f) {
      ElemId target = static_cast<ElemId>(rng.NextBelow(v));
      follows.emplace_back(v, target);
      // Some follows are mutual, so directed triangles exist.
      if (rng.NextBool(0.3)) follows.emplace_back(target, v);
    }
  }
  Structure net = EncodeDigraph(n, follows);
  std::vector<ElemId> red, blue, green;
  for (ElemId v = 0; v < n; ++v) {
    if (rng.NextBool(0.05)) red.push_back(v);
    if (rng.NextBool(0.15)) blue.push_back(v);
    if (rng.NextBool(0.10)) green.push_back(v);
  }
  net.AddUnarySymbol("R", red);
  net.AddUnarySymbol("B", blue);
  net.AddUnarySymbol("G", green);
  std::printf("network: %zu accounts, %zu follow edges, %zu flagged, "
              "%zu bots, %zu verified\n",
              n, follows.size(), red.size(), blue.size(), green.size());

  EvalOptions local{Engine::kLocal, TermEngine::kBall};
  Var x = VarNamed("x"), y = VarNamed("y"), z = VarNamed("z");

  // The paper's ground term t_R: total number of red nodes.
  Term flagged = Count({x}, Atom("R", {x}));
  std::printf("flagged accounts (ground term): %lld\n",
              static_cast<long long>(*EvaluateGroundTerm(flagged, net, local)));

  // t_B(x): number of bot accounts x follows.
  Term bots_followed = Count({y}, And(Atom("E", {x, y}), Atom("B", {y})));

  // "Suspicious": follows more bots than verified accounts.
  Term verified_followed = Count({y}, And(Atom("E", {x, y}), Atom("G", {y})));
  Formula suspicious = Not(TermLeq(bots_followed, verified_followed));
  std::printf("suspicious accounts (follow more bots than verified): %lld\n",
              static_cast<long long>(*CountSolutions(suspicious, net, local)));

  // The paper's t_Delta(x): directed triangles through x -- note this counts
  // *pairs* (y, z), so each directed triangle contributes once per role.
  Term triangles = Count(
      {y, z}, And({Atom("E", {x, y}), Atom("E", {y, z}), Atom("E", {z, x})}));
  Formula in_triangle = Ge1(triangles);
  std::printf("accounts on a directed triangle: %lld\n",
              static_cast<long long>(*CountSolutions(in_triangle, net, local)));

  // Full query: every verified account with its follower count (in-degree)
  // and the number of flagged accounts it follows.
  Foc1Query q;
  q.head_vars = {x};
  q.condition = Atom("G", {x});
  q.head_terms = {Count({y}, Atom("E", {y, x})),
                  Count({y}, And(Atom("E", {x, y}), Atom("R", {y})))};
  Result<QueryResult> rows = EvaluateQuery(q, net, local);
  std::printf("verified accounts: %zu; first 5 (id, followers, flagged "
              "followees):\n",
              rows->rows.size());
  for (std::size_t i = 0; i < 5 && i < rows->rows.size(); ++i) {
    std::printf("  %3u  %3lld  %lld\n", rows->rows[i].elements[0],
                static_cast<long long>(rows->rows[i].counts[0]),
                static_cast<long long>(rows->rows[i].counts[1]));
  }

  // Cross-check one result against the naive reference engine.
  EvalOptions naive{Engine::kNaive, TermEngine::kBall};
  bool agree = *CountSolutions(suspicious, net, local) ==
               *CountSolutions(suspicious, net, naive);
  std::printf("local engine agrees with reference: %s\n",
              agree ? "yes" : "NO");
  return 0;
}
