// Quickstart: build a small database, write FOC(P) queries with the fluent
// API and the text parser, and evaluate them with both engines.
//
// Run: ./example_quickstart
#include <cstdio>

#include "focq/core/api.h"
#include "focq/graph/generators.h"
#include "focq/logic/build.h"
#include "focq/logic/parser.h"
#include "focq/logic/printer.h"
#include "focq/structure/encode.h"

int main() {
  using namespace focq;

  // 1. A structure: the 4x4 grid graph as a {E/2}-database.
  Structure db = EncodeGraph(MakeGrid(4, 4));
  std::printf("universe: %zu elements, ||A|| = %zu\n", db.Order(),
              db.SizeNorm());

  // 2. A FOC1(P) sentence, built with the fluent API: "some vertex has
  //    exactly 4 neighbours" (an interior grid vertex).
  Var x = VarNamed("x"), y = VarNamed("y");
  Formula has_deg4 = Exists(x, TermEq(Count({y}, Atom("E", {x, y})), Int(4)));

  EvalOptions naive{Engine::kNaive, TermEngine::kBall};
  EvalOptions local{Engine::kLocal, TermEngine::kBall};
  std::printf("sentence: %s\n", ToString(has_deg4).c_str());
  std::printf("  naive engine: %s\n",
              *ModelCheck(has_deg4, db, naive) ? "true" : "false");
  std::printf("  local engine: %s\n",
              *ModelCheck(has_deg4, db, local) ? "true" : "false");

  // 3. The same thing from text.
  Result<Formula> parsed =
      ParseFormula("exists x. @eq(#(y). (E(x, y)), 4)");
  std::printf("  parsed     : %s\n",
              *ModelCheck(*parsed, db, local) ? "true" : "false");

  // 4. The counting problem (Corollary 5.6): how many vertices have an odd
  //    number of neighbours?
  Formula odd_degree = Not(Pred(PredEven(), {Count({y}, Atom("E", {x, y}))}));
  std::printf("vertices of odd degree: %lld\n",
              static_cast<long long>(*CountSolutions(odd_degree, db, local)));

  // 5. A full FOC1(P) query (Definition 5.2): list every vertex with its
  //    degree and its number of degree-2 neighbours.
  Var z = VarNamed("z");
  Formula neighbour_is_corner =
      And(Atom("E", {x, y}), TermEq(Count({z}, Atom("E", {y, z})), Int(2)));
  Foc1Query query;
  query.head_vars = {x};
  query.condition = Eq(x, x);
  query.head_terms = {Count({y}, Atom("E", {x, y})),
                      Count({y}, neighbour_is_corner)};
  Result<QueryResult> rows = EvaluateQuery(query, db, local);
  std::printf("query rows (first 5 of %zu):\n", rows->rows.size());
  for (std::size_t i = 0; i < 5 && i < rows->rows.size(); ++i) {
    std::printf("  vertex %u: degree=%lld, corner-neighbours=%lld\n",
                rows->rows[i].elements[0],
                static_cast<long long>(rows->rows[i].counts[0]),
                static_cast<long long>(rows->rows[i].counts[1]));
  }
  return 0;
}
