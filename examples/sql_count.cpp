// Example 5.3 end-to-end: the paper's three SQL COUNT statements, translated
// to FOC1(P)-queries and evaluated against a synthetic Customer/Order
// database, with the direct hash-aggregation baseline for comparison.
//
// Run: ./example_sql_count
#include <cstdio>

#include "focq/logic/printer.h"
#include "focq/sql/count_query.h"
#include "focq/sql/datagen.h"

int main() {
  using namespace focq;

  CustomerOrderConfig config;
  config.num_customers = 200;
  config.num_orders = 800;
  config.seed = 2026;
  Catalog db = MakeCustomerOrderDatabase(config);
  EvalOptions options{Engine::kLocal, TermEngine::kBall};

  // --- Query 1: SELECT Country, COUNT(Id) FROM Customer GROUP BY Country.
  GroupByCountSpec by_country{"Customer", "Country", "Id"};
  Result<Foc1Query> q1 = BuildGroupByCountQuery(db, by_country);
  std::printf("Q1 condition: %s\n", ToString(q1->condition).c_str());
  std::printf("Q1 count term: %s\n", ToString(q1->head_terms[0]).c_str());
  auto rows1 = RunGroupByCountFoc1(db, by_country, options);
  auto direct1 = RunGroupByCountDirect(db, by_country);
  std::printf("customers per country (FOC1 == direct: %s):\n",
              *rows1 == *direct1 ? "yes" : "NO");
  for (const AggRow& row : *rows1) {
    std::printf("  %-10s %lld\n", ValueToString(row.group[0]).c_str(),
                static_cast<long long>(row.count));
  }

  // --- Query 2: total number of customers and orders.
  TotalCountsSpec totals{{"Customer", "Order"}};
  auto rows2 = RunTotalCountsFoc1(db, totals, options);
  auto direct2 = RunTotalCountsDirect(db, totals);
  std::printf("totals (FOC1 == direct: %s):\n",
              *rows2 == *direct2 ? "yes" : "NO");
  for (const AggRow& row : *rows2) {
    std::printf("  %-10s %lld\n", ValueToString(row.group[0]).c_str(),
                static_cast<long long>(row.count));
  }

  // --- Query 3: orders per Berlin customer, grouped by name.
  JoinGroupCountSpec berlin;
  berlin.dim_table = "Customer";
  berlin.fact_table = "Order";
  berlin.dim_key_column = "Id";
  berlin.fact_join_column = "CustomerId";
  berlin.fact_count_column = "Id";
  berlin.filter_column = "City";
  berlin.filter_value = Value{"Berlin"};
  berlin.group_columns = {"FirstName", "LastName"};
  auto rows3 = RunJoinGroupCountFoc1(db, berlin, options);
  auto direct3 = RunJoinGroupCountDirect(db, berlin);
  std::printf("orders per Berlin customer name (FOC1 == direct: %s), "
              "%zu groups; first 5:\n",
              *rows3 == *direct3 ? "yes" : "NO", rows3->size());
  for (std::size_t i = 0; i < 5 && i < rows3->size(); ++i) {
    std::printf("  %-8s %-8s %lld\n",
                ValueToString((*rows3)[i].group[0]).c_str(),
                ValueToString((*rows3)[i].group[1]).c_str(),
                static_cast<long long>((*rows3)[i].count));
  }
  return 0;
}
