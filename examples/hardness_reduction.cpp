// Section 4 live: take a graph property (FO), reduce the graph to the tree
// T_G and the string S_G, rewrite the sentence into FOC({P=}), and watch the
// answers coincide -- the machinery behind Theorems 4.1 and 4.3.
//
// Run: ./example_hardness_reduction
#include <cstdio>

#include "focq/eval/naive_eval.h"
#include "focq/graph/generators.h"
#include "focq/hardness/string_reduction.h"
#include "focq/hardness/tree_reduction.h"
#include "focq/logic/build.h"
#include "focq/logic/fragment.h"
#include "focq/structure/encode.h"
#include "focq/util/rng.h"

int main() {
  using namespace focq;

  Var x = VarNamed("x"), y = VarNamed("y"), z = VarNamed("z");
  Formula triangle = Exists(
      x, Exists(y, Exists(z, And({Atom("E", {x, y}), Atom("E", {y, z}),
                                  Atom("E", {z, x})}))));

  Rng rng(5);
  for (int round = 0; round < 4; ++round) {
    Graph g = MakeErdosRenyi(5, 0.25 + 0.15 * round, &rng);
    Structure gs = EncodeGraph(g);
    NaiveEvaluator graph_eval(gs);
    bool expected = graph_eval.Satisfies(triangle);

    TreeEncoding tree = BuildReductionTree(g);
    Result<Formula> tree_phi = RewriteGraphSentenceForTree(triangle);
    NaiveEvaluator tree_eval(tree.structure);
    bool on_tree = tree_eval.Satisfies(*tree_phi);

    Structure str = BuildReductionStringStructure(g);
    Result<Formula> string_phi = RewriteGraphSentenceForString(triangle);
    NaiveEvaluator string_eval(str);
    bool on_string = string_eval.Satisfies(*string_phi);

    std::printf(
        "G: n=%zu m=%zu  triangle=%-5s | T_G: %4zu nodes -> %-5s | "
        "S_G: %4zu positions -> %-5s\n",
        g.num_vertices(), g.num_edges(), expected ? "true" : "false",
        tree.structure.Order(), on_tree ? "true" : "false", str.Order(),
        on_string ? "true" : "false");
  }

  // The rewritten edge formula is FOC({P=}) but *not* FOC1 -- exactly the
  // boundary the paper draws.
  Formula psi_e = TreePsiEdge(x, y);
  std::printf("psi_E is FOC1: %s (expected: no)\n",
              IsFOC1(psi_e) ? "yes" : "no");
  return 0;
}
