// A guided tour of the paper's machinery on one structure: distance
// patterns, the cl-term decomposition (Lemma 6.4), sparse neighbourhood
// covers (Theorem 8.1), the splitter game (Section 8), the Removal Lemma
// surgery (Section 7.3), the Section 8.2 removal recursion, and the
// bounded-degree sphere types of [16].
//
// Run: ./example_machinery_tour
#include <cstdio>

#include "focq/core/removal_engine.h"
#include "focq/cover/neighborhood_cover.h"
#include "focq/graph/generators.h"
#include "focq/graph/splitter.h"
#include "focq/hanf/sphere.h"
#include "focq/locality/decompose.h"
#include "focq/logic/build.h"
#include "focq/logic/printer.h"
#include "focq/structure/encode.h"
#include "focq/structure/gaifman.h"
#include "focq/structure/removal.h"

int main() {
  using namespace focq;

  // The arena: a random tree with every third vertex coloured red.
  Rng rng(11);
  Structure a = EncodeGraph(MakeRandomTree(2000, &rng));
  std::vector<ElemId> reds;
  for (ElemId e = 0; e < a.universe_size(); e += 3) reds.push_back(e);
  a.AddUnarySymbol("R", reds);
  Graph gaifman = BuildGaifmanGraph(a);
  std::printf("arena: random tree, n=%zu, ||A||=%zu, %zu red vertices\n\n",
              a.Order(), a.SizeNorm(), reds.size());

  // --- Lemma 6.4: decompose #(y1,y2).(R(y1) and R(y2)) into connected
  //     cl-terms (the disconnected pattern becomes a product minus
  //     corrections).
  Var y1 = VarNamed("y1"), y2 = VarNamed("y2");
  Formula kernel = And(Atom("R", {y1}), Atom("R", {y2}));
  Result<Decomposition> dec = DecomposeCount({y1, y2}, false, kernel);
  std::printf("Lemma 6.4 on #(y1,y2).(R(y1) & R(y2)):\n");
  std::printf("  radius %u, %zu basic cl-terms, %zu monomials, all patterns "
              "connected\n",
              dec->radius, dec->term.NumBasics(), dec->term.NumMonomials());
  ClTermBallEvaluator ball(a, gaifman);
  std::printf("  value = %lld (= %zu^2 red pairs)\n\n",
              static_cast<long long>(*ball.EvaluateGround(dec->term)),
              reds.size());

  // --- Theorem 8.1: a sparse (2, 4)-neighbourhood cover.
  NeighborhoodCover cover = SparseCover(gaifman, 2);
  std::printf("Theorem 8.1, sparse (2,4)-cover:\n");
  std::printf("  %zu clusters, max degree %zu, total cluster size %zu "
              "(n log-ish, not n^2)\n\n",
              cover.NumClusters(), cover.MaxDegree(),
              cover.TotalClusterSize());

  // --- Section 8: the splitter game certifies nowhere density.
  auto splitter = MakeTreeSplitter();
  auto connector = MakeGreedyConnector();
  for (std::uint32_t r : {1u, 2u, 4u}) {
    SplitterGameResult game =
        PlaySplitterGame(gaifman, r, splitter.get(), connector.get(), 50);
    std::printf("splitter game r=%u: Splitter wins in %u rounds\n", r,
                game.rounds);
  }

  // --- Section 7.3: remove one element, keeping all answers recoverable.
  RemovalSignature rs = BuildRemovalSignature(a.signature(), 2);
  RemovalResult removed = RemoveElement(a, gaifman, /*d=*/0, 2, rs);
  std::printf("\nRemoval Lemma: |A *2 d| = %zu over %zu sigma~-symbols "
              "(R~I partitions + S_i markers)\n",
              removed.structure.Order(),
              removed.structure.signature().NumSymbols());

  // --- Section 8.2: the full recursion (cover -> splitter -> removal ->
  //     re-decompose -> recurse), versus the direct ball evaluator.
  PatternGraph edge(2, 0);
  edge.SetEdge(0, 1);
  BasicClTerm degree_term{{y1, y2}, /*unary=*/true,
                          And(Atom("E", {y1, y2}), Atom("R", {y2})), 0, edge};
  Result<std::vector<CountInt>> via_removal =
      EvaluateBasicWithRemoval(a, gaifman, degree_term);
  Result<std::vector<CountInt>> via_ball =
      ball.EvaluateBasicAll(degree_term);
  bool agree = via_removal.ok() && *via_removal == *via_ball;
  std::printf("Section 8.2 recursion vs ball evaluation of "
              "#(y2).(E(y1,y2) & R(y2)): %s\n",
              agree ? "identical on all 2000 anchors" : "MISMATCH");

  // --- [16]: sphere types (radius 1).
  SphereTypeAssignment types = ComputeSphereTypes(a, gaifman, 1);
  std::printf("sphere types at radius 1: %zu distinct types over %zu "
              "elements\n",
              types.registry.NumTypes(), a.Order());
  return 0;
}
