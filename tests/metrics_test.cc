// Observability tests: the sharded-counter aggregation protocol, trace span
// nesting, JSON export sanity, and — the key property — that installing a
// metrics/trace sink never changes results, and that all deterministic
// counters are identical for every num_threads (DESIGN.md, "Observability").
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "focq/core/api.h"
#include "focq/eval/query.h"
#include "focq/graph/generators.h"
#include "focq/logic/build.h"
#include "focq/obs/metrics.h"
#include "focq/obs/trace.h"
#include "focq/structure/encode.h"
#include "focq/util/thread_pool.h"
#include "test_util.h"

namespace focq {
namespace {

TEST(ShardedCounter, TotalIsChunkingIndependent) {
  // Sum of i over [0, n), accumulated per-chunk under every grid the
  // evaluation engines might use: the total must match the serial sum.
  const std::size_t n = 1000;
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < n; ++i) expected += static_cast<std::int64_t>(i);
  for (int workers : {0, 1, 2, 4, 8}) {
    ChunkGrid grid = MakeChunkGrid(n, EffectiveThreads(workers));
    ShardedCounter counter(grid.num_chunks);
    ParallelFor(workers, n,
                [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                  for (std::size_t i = begin; i < end; ++i) {
                    counter.Add(chunk, static_cast<std::int64_t>(i));
                  }
                });
    EXPECT_EQ(counter.Total(), expected) << "workers=" << workers;
  }
}

TEST(ShardedCounter, FlushToIsNullSafeAndAdditive) {
  ShardedCounter counter(4);
  counter.Add(0, 2);
  counter.Add(3, 5);
  counter.FlushTo(nullptr, "x");  // must not crash
  MetricsSink sink;
  counter.FlushTo(&sink, "x");
  counter.FlushTo(&sink, "x");  // flushes accumulate like AddCounter
  EXPECT_EQ(sink.Counter("x"), 14);
}

TEST(MetricsSink, CounterMaxAndValueSemantics) {
  MetricsSink sink;
  sink.AddCounter("a", 3);
  sink.AddCounter("a", 4);
  sink.MaxCounter("hi", 5);
  sink.MaxCounter("hi", 2);  // below the high-water mark: no effect
  sink.RecordValue("v", 10);
  sink.RecordValue("v", -2);
  EXPECT_EQ(sink.Counter("a"), 7);
  EXPECT_EQ(sink.Counter("hi"), 5);
  EXPECT_EQ(sink.Counter("missing"), 0);
  EvalMetrics snap = sink.Snapshot();
  ASSERT_EQ(snap.values.count("v"), 1u);
  EXPECT_EQ(snap.values["v"].count, 2);
  EXPECT_EQ(snap.values["v"].sum, 8);
  EXPECT_EQ(snap.values["v"].min, -2);
  EXPECT_EQ(snap.values["v"].max, 10);
  sink.Reset();
  EXPECT_EQ(sink.Counter("a"), 0);
  EXPECT_TRUE(sink.Snapshot().counters.empty());
}

TEST(ValueStats, QuantileOfEmptyStreamIsZero) {
  ValueStats empty;
  for (double q : {-1.0, 0.0, 0.5, 1.0, 2.0}) {
    EXPECT_EQ(empty.Quantile(q), 0.0) << "q=" << q;
  }
}

TEST(ValueStats, QuantileOfSingleSampleIsThatSample) {
  // One sample lands mid-bucket (42 in [32, 63]): naive interpolation would
  // report the bucket edge, but the [min, max] clamp pins every quantile to
  // the exact sample.
  ValueStats one;
  one.Record(42);
  for (double q : {0.0, 0.25, 0.5, 0.95, 1.0}) {
    EXPECT_EQ(one.Quantile(q), 42.0) << "q=" << q;
  }
}

TEST(ValueStats, QuantileIsExactWhenAllSamplesShareABucket) {
  // 100 samples of 5 all land in bucket [4, 7]; interpolation spreads the
  // rank across the bucket range but the min/max envelope collapses it.
  ValueStats same;
  for (int i = 0; i < 100; ++i) same.Record(5);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(same.Quantile(q), 5.0) << "q=" << q;
  }
}

TEST(ValueStats, QuantileClampsOutOfRangeQToMinMax) {
  ValueStats mixed;
  mixed.Record(1);
  mixed.Record(100);
  EXPECT_EQ(mixed.Quantile(-0.5), 1.0);
  EXPECT_EQ(mixed.Quantile(0.0), 1.0);
  EXPECT_EQ(mixed.Quantile(1.0), 100.0);
  EXPECT_EQ(mixed.Quantile(7.0), 100.0);
  // Interior quantiles stay inside the envelope.
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_GE(mixed.Quantile(q), 1.0) << "q=" << q;
    EXPECT_LE(mixed.Quantile(q), 100.0) << "q=" << q;
  }
}

TEST(MetricsSink, ToJsonEscapesNames) {
  MetricsSink sink;
  sink.AddCounter("quote\"back\\slash\nnewline", 1);
  sink.RecordValue("plain", 3);
  std::string json = sink.Snapshot().ToJson();
  EXPECT_NE(json.find("\\\"back\\\\slash\\n"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"values\""), std::string::npos);
  EXPECT_NE(json.find("\"plain\": {\"count\": 1, \"sum\": 3, \"min\": 3, "
                      "\"max\": 3, \"mean\": 3, \"p50\": 3, \"p95\": 3, "
                      "\"p99\": 3}"),
            std::string::npos);
}

TEST(TraceSink, SpansNestAndAggregate) {
  TraceSink sink;
  {
    ScopedSpan outer(&sink, "outer");
    { ScopedSpan inner(&sink, "inner"); }
    { ScopedSpan inner(&sink, "inner"); }
  }
  { ScopedSpan null_safe(nullptr, "never"); }  // must not crash
  std::vector<TraceSpan> spans = sink.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "outer");
  ASSERT_EQ(spans[0].children.size(), 2u);
  EXPECT_EQ(spans[0].children[0].name, "inner");
  // Children live inside the parent interval, in start order.
  EXPECT_GE(spans[0].children[0].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[0].children[1].start_ns + spans[0].children[1].duration_ns,
            spans[0].start_ns + spans[0].duration_ns);
  std::map<std::string, std::int64_t> agg = sink.AggregateNanos();
  ASSERT_EQ(agg.count("inner"), 1u);
  EXPECT_GE(agg["outer"],
            spans[0].children[0].duration_ns + spans[0].children[1].duration_ns);
  EXPECT_NE(sink.ToJson().find("\"spans\""), std::string::npos);
  EXPECT_NE(sink.ToChromeTracing().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(sink.ToChromeTracing().find("\"ph\": \"X\""), std::string::npos);
}

// phi(x): width-2, nesting-depth-2 condition exercising compile, cover /
// ball cl-term evaluation, and the residual formula.
Formula ObservedCondition() {
  Var x = VarNamed("obx"), y = VarNamed("oby"), z = VarNamed("obz");
  Formula deg2 = TermEq(Count({z}, Atom("E", {y, z})), Int(2));
  return Ge1(Sub(Count({y}, And(Atom("E", {x, y}), deg2)), Int(1)));
}

TEST(TraceSink, SurplusEndIsTolerated) {
  TraceSink sink;
  sink.End();  // nothing open: must be a no-op, not a crash
  sink.Begin("outer");
  sink.Begin("inner");
  sink.End();
  sink.End();
  sink.End();  // surplus again, after a balanced forest
  sink.Begin("second");
  sink.End();
  std::vector<TraceSpan> spans = sink.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer");
  ASSERT_EQ(spans[0].children.size(), 1u);
  EXPECT_EQ(spans[0].children[0].name, "inner");
  EXPECT_EQ(spans[1].name, "second");
  EXPECT_TRUE(spans[1].children.empty());
}

TEST(TraceSink, WorkerSlicesTagChunks) {
  constexpr std::size_t kItems = 64;
  constexpr int kThreads = 4;
  TraceSink sink;
  std::vector<int> out(kItems, 0);
  {
    ScopedSpan span(&sink, "fanout");
    ParallelFor(kThreads, kItems,
                [&](std::size_t, std::size_t begin, std::size_t end) {
                  for (std::size_t i = begin; i < end; ++i) out[i] = 1;
                });
  }
  for (int v : out) EXPECT_EQ(v, 1);
  // One slice per chunk of the same grid the loop ran over, each named after
  // the innermost open span and assigned a lane in [0, workers].
  ChunkGrid grid = MakeChunkGrid(kItems, kThreads);
  std::vector<WorkerSlice> slices = sink.Slices();
  ASSERT_EQ(slices.size(), grid.num_chunks);
  for (const WorkerSlice& slice : slices) {
    EXPECT_EQ(slice.span_name, "fanout");
    EXPECT_GE(slice.tid, 0);
    EXPECT_LE(slice.tid, EffectiveThreads(kThreads));
    EXPECT_GE(slice.duration_ns, 0);
  }
  // The Chrome export names the worker lanes and keeps spans at tid 0.
  std::string chrome = sink.ToChromeTracing();
  EXPECT_NE(chrome.find("thread_name"), std::string::npos);
  EXPECT_NE(chrome.find("fanout.chunk"), std::string::npos);

  // Outside any ParallelFor the observer must be uninstalled again: a second
  // loop with no open span records no further slices.
  ParallelFor(kThreads, kItems,
              [&](std::size_t, std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) out[i] = 2;
              });
  EXPECT_EQ(sink.Slices().size(), grid.num_chunks);
}

TEST(Observability, SinksDoNotChangeResults) {
  Rng rng(4100);
  Structure a = test::RandomGraphStructure(60, 1.5, &rng);
  Formula phi = ObservedCondition();
  for (TermEngine te : {TermEngine::kBall, TermEngine::kSparseCover}) {
    EvalOptions plain{Engine::kLocal, te};
    Result<CountInt> bare = CountSolutions(phi, a, plain);
    ASSERT_TRUE(bare.ok()) << bare.status().ToString();
    MetricsSink metrics;
    TraceSink trace;
    EvalOptions observed{Engine::kLocal, te};
    observed.metrics = &metrics;
    observed.trace = &trace;
    Result<CountInt> traced = CountSolutions(phi, a, observed);
    ASSERT_TRUE(traced.ok()) << traced.status().ToString();
    EXPECT_EQ(*bare, *traced);
    EXPECT_GT(metrics.Counter("plan.compilations"), 0);
    EXPECT_FALSE(trace.Spans().empty());
  }
}

TEST(Observability, CountersIdenticalAcrossThreadCounts) {
  // The determinism contract, extended to counters: every recorded counter
  // and value distribution is a pure function of (structure, query), so the
  // snapshots must be identical for num_threads in {0, 1, 4}. Pool stats are
  // scheduling-dependent and deliberately NOT recorded in the sink.
  Rng rng(4200);
  Structure a = test::RandomColoredStructure(80, 1.6, 0.4, &rng);
  Formula phi = ObservedCondition();
  for (TermEngine te : {TermEngine::kBall, TermEngine::kSparseCover}) {
    EvalMetrics reference;
    CountInt reference_count = 0;
    bool first = true;
    for (int threads : {0, 1, 4}) {
      MetricsSink metrics;
      EvalOptions options{Engine::kLocal, te, threads};
      options.metrics = &metrics;
      Result<CountInt> count = CountSolutions(phi, a, options);
      ASSERT_TRUE(count.ok()) << count.status().ToString();
      EvalMetrics snap = metrics.Snapshot();
      if (first) {
        reference = snap;
        reference_count = *count;
        first = false;
        EXPECT_FALSE(snap.counters.empty());
        continue;
      }
      EXPECT_EQ(*count, reference_count) << "threads=" << threads;
      EXPECT_EQ(snap.counters, reference.counters) << "threads=" << threads;
      EXPECT_EQ(snap.values, reference.values) << "threads=" << threads;
    }
  }
}

TEST(Observability, NaiveTupleCountMatchesAcrossThreadCounts) {
  Rng rng(4300);
  Structure a = test::RandomGraphStructure(40, 1.4, &rng);
  Formula phi = ObservedCondition();
  std::int64_t reference = -1;
  for (int threads : {0, 1, 4}) {
    MetricsSink metrics;
    EvalOptions options{Engine::kNaive, TermEngine::kBall, threads};
    options.metrics = &metrics;
    Result<CountInt> count = CountSolutions(phi, a, options);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    std::int64_t tuples = metrics.Counter("naive.tuples_enumerated");
    EXPECT_GT(tuples, 0);
    if (reference < 0) {
      reference = tuples;
    } else {
      EXPECT_EQ(tuples, reference) << "threads=" << threads;
    }
  }
}

TEST(Observability, QueryResultCarriesSnapshot) {
  Rng rng(4400);
  Structure a = test::RandomColoredStructure(30, 1.4, 0.4, &rng);
  Var x = VarNamed("oqx"), y = VarNamed("oqy");
  Foc1Query q;
  q.head_vars = {x};
  q.head_terms = {Count({y}, Atom("E", {x, y}))};
  q.condition = Atom("R", {x});
  MetricsSink metrics;
  EvalOptions options{Engine::kLocal, TermEngine::kBall};
  options.metrics = &metrics;
  Result<QueryResult> with_sink = EvaluateQuery(q, a, options);
  ASSERT_TRUE(with_sink.ok()) << with_sink.status().ToString();
  EXPECT_EQ(with_sink->metrics.counters, metrics.Snapshot().counters);
  EXPECT_GT(with_sink->metrics.counters.count("plan.compilations"), 0u);
  // No sink installed: the snapshot stays empty, the rows stay the same.
  Result<QueryResult> without =
      EvaluateQuery(q, a, EvalOptions{Engine::kLocal, TermEngine::kBall});
  ASSERT_TRUE(without.ok());
  EXPECT_TRUE(without->metrics.counters.empty());
  EXPECT_EQ(without->rows, with_sink->rows);
}

TEST(MetricsSink, MergeValueMatchesPerSampleRecording) {
  // The batched path (local ValueStats + one MergeValue) must be
  // bit-identical to recording every sample individually — that is what
  // keeps the aggregated cover/hanf distributions inside the deterministic-
  // counters contract.
  std::vector<std::int64_t> samples = {5, -3, 12, 12, 0, 7, -3, 40};
  MetricsSink per_sample;
  MetricsSink batched;
  ValueStats first_half, second_half;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    per_sample.RecordValue("dist", samples[i]);
    (i < samples.size() / 2 ? first_half : second_half).Record(samples[i]);
  }
  batched.MergeValue("dist", first_half);
  batched.MergeValue("dist", second_half);
  EXPECT_TRUE(per_sample.Snapshot().values == batched.Snapshot().values);
  // Merging an empty batch neither creates an entry nor perturbs one.
  MetricsSink empty;
  empty.MergeValue("dist", ValueStats{});
  EXPECT_TRUE(empty.Snapshot().values.empty());
  batched.MergeValue("dist", ValueStats{});
  EXPECT_TRUE(per_sample.Snapshot().values == batched.Snapshot().values);
}

TEST(Observability, PoolStatsAreMonotonic) {
  // Scheduling-dependent pool totals live outside the sink; they are read
  // directly off the shared pool and only ever grow.
  ThreadPool::Stats before = ThreadPool::Shared().GetStats();
  Rng rng(4500);
  Structure a = test::RandomGraphStructure(60, 1.5, &rng);
  EvalOptions options{Engine::kLocal, TermEngine::kBall, 4};
  Result<CountInt> count = CountSolutions(ObservedCondition(), a, options);
  ASSERT_TRUE(count.ok());
  ThreadPool::Stats after = ThreadPool::Shared().GetStats();
  EXPECT_GE(after.tasks_submitted, before.tasks_submitted);
  EXPECT_GE(after.tasks_executed, before.tasks_executed);
  // ParallelFor joins on chunk completion, not task completion: the caller
  // can drain every chunk before a helper task ever runs, so executed only
  // bounds submitted from below.
  EXPECT_LE(after.tasks_executed, after.tasks_submitted);
}

}  // namespace
}  // namespace focq
