#include <gtest/gtest.h>

#include "focq/logic/fragment.h"
#include "focq/sql/count_query.h"
#include "focq/sql/datagen.h"

namespace focq {
namespace {

Catalog SmallDatabase() {
  Catalog catalog;
  SqlTable customer("Customer", {"Id", "FirstName", "LastName", "City",
                                 "Country", "Phone"});
  customer.AddRow({Value{std::int64_t{1}}, Value{"Ada"}, Value{"Lovelace"},
                   Value{"Berlin"}, Value{"DE"}, Value{"111"}});
  customer.AddRow({Value{std::int64_t{2}}, Value{"Alan"}, Value{"Turing"},
                   Value{"London"}, Value{"UK"}, Value{"222"}});
  customer.AddRow({Value{std::int64_t{3}}, Value{"Kurt"}, Value{"Goedel"},
                   Value{"Berlin"}, Value{"AT"}, Value{"333"}});
  customer.AddRow({Value{std::int64_t{4}}, Value{"Emmy"}, Value{"Noether"},
                   Value{"Erlangen"}, Value{"DE"}, Value{"444"}});
  catalog.AddTable(std::move(customer));

  SqlTable orders("Order", {"Id", "OrderDate", "OrderNumber", "CustomerId",
                            "TotalAmount"});
  orders.AddRow({Value{std::int64_t{100}}, Value{"2026-01"}, Value{"A"},
                 Value{std::int64_t{1}}, Value{std::int64_t{10}}});
  orders.AddRow({Value{std::int64_t{101}}, Value{"2026-01"}, Value{"B"},
                 Value{std::int64_t{1}}, Value{std::int64_t{20}}});
  orders.AddRow({Value{std::int64_t{102}}, Value{"2026-02"}, Value{"C"},
                 Value{std::int64_t{3}}, Value{std::int64_t{30}}});
  orders.AddRow({Value{std::int64_t{103}}, Value{"2026-02"}, Value{"D"},
                 Value{std::int64_t{2}}, Value{std::int64_t{40}}});
  catalog.AddTable(std::move(orders));
  return catalog;
}

TEST(Catalog, EncodingShape) {
  Catalog db = SmallDatabase();
  Catalog::Encoded enc = db.Encode({Value{"Berlin"}});
  // Relations: Customer/6, Order/5, C_Berlin/1.
  EXPECT_EQ(enc.structure.signature().NumSymbols(), 3u);
  EXPECT_EQ(enc.structure.relation(0).NumTuples(), 4u);
  EXPECT_EQ(enc.structure.relation(1).NumTuples(), 4u);
  Result<ElemId> berlin = enc.IdOf(Value{"Berlin"});
  ASSERT_TRUE(berlin.ok());
  SymbolId c = *enc.structure.signature().Find("C_Berlin");
  EXPECT_TRUE(enc.structure.Holds(c, {*berlin}));
  // Int 1 and string "1" would be distinct domain members.
  EXPECT_TRUE(enc.IdOf(Value{std::int64_t{1}}).ok());
  EXPECT_FALSE(enc.IdOf(Value{"1"}).ok());
}

TEST(SqlCount, GroupByCountryMatchesDirect) {
  Catalog db = SmallDatabase();
  GroupByCountSpec spec{"Customer", "Country", "Id"};
  Result<Foc1Query> q = BuildGroupByCountQuery(db, spec);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->Validate().ok());
  EXPECT_TRUE(IsFOC1(q->condition));

  auto direct = RunGroupByCountDirect(db, spec);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(direct->size(), 3u);  // DE:2, UK:1, AT:1
  for (Engine engine : {Engine::kLocal}) {
    auto foc1 = RunGroupByCountFoc1(db, spec, {engine, TermEngine::kBall});
    ASSERT_TRUE(foc1.ok()) << foc1.status().ToString();
    EXPECT_EQ(*foc1, *direct);
  }
}

TEST(SqlCount, TotalsMatchDirect) {
  Catalog db = SmallDatabase();
  TotalCountsSpec spec{{"Customer", "Order"}};
  auto direct = RunTotalCountsDirect(db, spec);
  ASSERT_TRUE(direct.ok());
  for (Engine engine : {Engine::kLocal}) {
    auto foc1 = RunTotalCountsFoc1(db, spec, {engine, TermEngine::kBall});
    ASSERT_TRUE(foc1.ok()) << foc1.status().ToString();
    EXPECT_EQ(*foc1, *direct);
    ASSERT_EQ(foc1->size(), 2u);
    EXPECT_EQ((*foc1)[0].count, 4);
    EXPECT_EQ((*foc1)[1].count, 4);
  }
}

TEST(SqlCount, BerlinJoinMatchesDirect) {
  Catalog db = SmallDatabase();
  JoinGroupCountSpec spec;
  spec.dim_table = "Customer";
  spec.fact_table = "Order";
  spec.dim_key_column = "Id";
  spec.fact_join_column = "CustomerId";
  spec.fact_count_column = "Id";
  spec.filter_column = "City";
  spec.filter_value = Value{"Berlin"};
  spec.group_columns = {"FirstName", "LastName"};

  auto direct = RunJoinGroupCountDirect(db, spec);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(direct->size(), 2u);  // Ada Lovelace (2 orders), Kurt Goedel (1)
  auto foc1 = RunJoinGroupCountFoc1(db, spec, {Engine::kLocal, TermEngine::kBall});
  ASSERT_TRUE(foc1.ok()) << foc1.status().ToString();
  EXPECT_EQ(*foc1, *direct);
  // Spot check the counts.
  for (const AggRow& row : *foc1) {
    if (ValueToString(row.group[0]) == "Ada") EXPECT_EQ(row.count, 2);
    if (ValueToString(row.group[0]) == "Kurt") EXPECT_EQ(row.count, 1);
  }
}

TEST(SqlCount, GeneratedDataAgreesAcrossEngines) {
  CustomerOrderConfig config;
  config.num_customers = 40;
  config.num_orders = 120;
  config.seed = 9;
  Catalog db = MakeCustomerOrderDatabase(config);
  GroupByCountSpec spec{"Customer", "Country", "Id"};
  auto direct = RunGroupByCountDirect(db, spec);
  auto naive = RunGroupByCountFoc1(db, spec, {Engine::kLocal, TermEngine::kBall});
  auto local = RunGroupByCountFoc1(db, spec, {Engine::kLocal, TermEngine::kBall});
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  EXPECT_EQ(*naive, *direct);
  EXPECT_EQ(*local, *direct);

  JoinGroupCountSpec join;
  join.dim_table = "Customer";
  join.fact_table = "Order";
  join.dim_key_column = "Id";
  join.fact_join_column = "CustomerId";
  join.fact_count_column = "Id";
  join.filter_column = "City";
  join.filter_value = Value{"Berlin"};
  join.group_columns = {"FirstName", "LastName"};
  auto jdirect = RunJoinGroupCountDirect(db, join);
  auto jfoc1 = RunJoinGroupCountFoc1(db, join, {Engine::kLocal, TermEngine::kBall});
  ASSERT_TRUE(jdirect.ok());
  ASSERT_TRUE(jfoc1.ok()) << jfoc1.status().ToString();
  EXPECT_EQ(*jfoc1, *jdirect);
}

TEST(Datagen, Reproducible) {
  CustomerOrderConfig config;
  config.seed = 4;
  Catalog a = MakeCustomerOrderDatabase(config);
  Catalog b = MakeCustomerOrderDatabase(config);
  Result<const SqlTable*> ta = a.FindTable("Customer");
  Result<const SqlTable*> tb = b.FindTable("Customer");
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  ASSERT_EQ((*ta)->NumRows(), (*tb)->NumRows());
  for (std::size_t i = 0; i < (*ta)->NumRows(); ++i) {
    for (std::size_t j = 0; j < (*ta)->NumColumns(); ++j) {
      EXPECT_EQ(ValueToString((*ta)->rows()[i][j]),
                ValueToString((*tb)->rows()[i][j]));
    }
  }
}

}  // namespace
}  // namespace focq
