#include <gtest/gtest.h>

#include "focq/cover/cover_term.h"
#include "focq/cover/neighborhood_cover.h"
#include "focq/graph/generators.h"
#include "focq/locality/decompose.h"
#include "focq/structure/encode.h"
#include "focq/structure/gaifman.h"
#include "test_util.h"

namespace focq {
namespace {

class CoverInvariantTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(CoverInvariantTest, BothConstructionsAreValidCovers) {
  auto [family, r] = GetParam();
  Rng rng(42 + family);
  Graph g;
  switch (family) {
    case 0: g = MakeRandomTree(200, &rng); break;
    case 1: g = MakeGrid(12, 15); break;
    case 2: g = MakeRandomBoundedDegree(150, 4, &rng); break;
    case 3: g = MakeClique(40); break;
    default: g = MakePath(100); break;
  }
  NeighborhoodCover exact = ExactBallCover(g, r);
  CheckCoverInvariants(g, exact);
  EXPECT_EQ(exact.cluster_radius, r);
  NeighborhoodCover sparse = SparseCover(g, r);
  CheckCoverInvariants(g, sparse);
  EXPECT_EQ(sparse.cluster_radius, 2 * r);
  EXPECT_LE(sparse.NumClusters(), exact.NumClusters());
}

INSTANTIATE_TEST_SUITE_P(
    Families, CoverInvariantTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(1u, 2u, 4u)));

TEST(SparseCover, SparseOnTreesDenseOnCliques) {
  Rng rng(77);
  Graph tree = MakeRandomTree(500, &rng);
  NeighborhoodCover tree_cover = SparseCover(tree, 2);
  // Greedy centres are pairwise > r apart; on sparse graphs the degree stays
  // far below n. (A loose sanity bound, not the theorem's n^delta; random
  // recursive trees have high-degree hubs that join many clusters.)
  EXPECT_LE(tree_cover.MaxDegree(), 60u);

  Graph clique = MakeClique(60);
  NeighborhoodCover clique_cover = SparseCover(clique, 1);
  // One centre covers everything on a clique.
  EXPECT_EQ(clique_cover.NumClusters(), 1u);
}

TEST(SparseCover, CentersFarApart) {
  Rng rng(78);
  Graph g = MakeGrid(20, 20);
  std::uint32_t r = 3;
  NeighborhoodCover cover = SparseCover(g, r);
  for (std::size_t i = 0; i < cover.centers.size(); ++i) {
    for (std::size_t j = i + 1; j < cover.centers.size(); ++j) {
      EXPECT_GT(BoundedDistance(g, cover.centers[i], cover.centers[j], r),
                r);
    }
  }
}

// The cover-based cl-term evaluator must agree with the ball-based one
// (and hence with the naive semantics) whenever the cover is wide enough.
TEST(CoverEvaluator, AgreesWithBallEvaluator) {
  Rng rng(1600);
  Var y1 = VarNamed("cvy1"), y2 = VarNamed("cvy2");
  for (int round = 0; round < 12; ++round) {
    Structure a = test::RandomColoredStructure(30, 1.2, 0.4, &rng);
    Graph gaifman = BuildGaifmanGraph(a);
    std::vector<Formula> parts = {
        test::RandomGuardedKernel({y1}, 2, true, 1, &rng, 1),
        test::RandomQuantifierFree({y1, y2}, 1, true, 1, &rng)};
    Formula kernel = And(parts);
    Result<Decomposition> d = DecomposeCount({y1, y2}, true, kernel);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    ClTermBallEvaluator ball(a, gaifman);
    Result<std::vector<CountInt>> expected = ball.EvaluateAll(d->term);
    ASSERT_TRUE(expected.ok());

    std::uint32_t needed = 0;
    for (const BasicClTerm& b : d->term.basics()) {
      needed = std::max(needed, RequiredCoverRadius(b));
    }
    for (bool sparse : {false, true}) {
      NeighborhoodCover cover = sparse ? SparseCover(gaifman, needed)
                                       : ExactBallCover(gaifman, needed);
      ClTermCoverEvaluator cov(a, gaifman, cover);
      Result<std::vector<CountInt>> actual = cov.EvaluateAll(d->term);
      ASSERT_TRUE(actual.ok());
      EXPECT_EQ(*actual, *expected) << "sparse=" << sparse;
    }
  }
}

TEST(CoverEvaluator, GroundTermsAgree) {
  Rng rng(1700);
  Var y1 = VarNamed("cgy1"), y2 = VarNamed("cgy2");
  Structure a = test::RandomColoredStructure(40, 1.3, 0.3, &rng);
  Graph gaifman = BuildGaifmanGraph(a);
  Formula kernel = And(Atom("E", {y1, y2}), Atom("R", {y2}));
  Result<Decomposition> d = DecomposeCount({y1, y2}, false, kernel);
  ASSERT_TRUE(d.ok());
  ClTermBallEvaluator ball(a, gaifman);
  std::uint32_t needed = 0;
  for (const BasicClTerm& b : d->term.basics()) {
    needed = std::max(needed, RequiredCoverRadius(b));
  }
  NeighborhoodCover cover = SparseCover(gaifman, needed);
  ClTermCoverEvaluator cov(a, gaifman, cover);
  EXPECT_EQ(*cov.EvaluateGround(d->term), *ball.EvaluateGround(d->term));
}

}  // namespace
}  // namespace focq
