#include <gtest/gtest.h>

#include "focq/core/enumerate.h"
#include "focq/graph/generators.h"
#include "focq/logic/build.h"
#include "focq/structure/encode.h"
#include "test_util.h"

namespace focq {
namespace {

TEST(SolutionStream, EnumeratesInOrder) {
  Structure a = EncodeGraph(MakePath(8));
  Var x = VarNamed("esx"), y = VarNamed("esy");
  // Degree-2 vertices of a path: the inner ones, 1..6.
  Formula phi = TermEq(Count({y}, Atom("E", {x, y})), Int(2));
  auto stream = SolutionStream::Open(phi, a);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  std::vector<ElemId> got;
  while (auto e = (*stream)->Next()) got.push_back(*e);
  EXPECT_EQ(got, (std::vector<ElemId>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ((*stream)->CandidatesLeft(), 0u);
  // Reset and re-drain.
  (*stream)->Reset();
  std::size_t count = 0;
  while ((*stream)->Next()) ++count;
  EXPECT_EQ(count, 6u);
}

TEST(SolutionStream, SentencesYieldAtMostOnce) {
  Structure a = EncodeGraph(MakeCycle(5));
  Var x = VarNamed("ssx"), y = VarNamed("ssy");
  Formula holds = Exists(x, Ge1(Count({y}, Atom("E", {x, y}))));
  auto s1 = SolutionStream::Open(holds, a);
  ASSERT_TRUE(s1.ok());
  EXPECT_TRUE((*s1)->Next().has_value());
  EXPECT_FALSE((*s1)->Next().has_value());

  Formula fails = Exists(x, TermEq(Count({y}, Atom("E", {x, y})), Int(7)));
  auto s2 = SolutionStream::Open(fails, a);
  ASSERT_TRUE(s2.ok());
  EXPECT_FALSE((*s2)->Next().has_value());
}

TEST(SolutionStream, AgreesWithCountSolutions) {
  Rng rng(991);
  Var x = VarNamed("eax"), y = VarNamed("eay");
  for (int round = 0; round < 10; ++round) {
    Structure a = test::RandomColoredStructure(25, 1.4, 0.4, &rng);
    Formula phi =
        Ge1(Count({y}, And(Atom("E", {x, y}), Atom("R", {y}))));
    auto stream = SolutionStream::Open(phi, a);
    ASSERT_TRUE(stream.ok());
    CountInt streamed = 0;
    while ((*stream)->Next()) ++streamed;
    EXPECT_EQ(streamed, *CountSolutions(phi, a, {}));
  }
}

TEST(SolutionStream, EarlyTerminationIsCheap) {
  // Only the prefix up to the first hit is inspected.
  Structure a = EncodeGraph(MakePath(100));
  Var x = VarNamed("etx"), y = VarNamed("ety");
  Formula phi = TermEq(Count({y}, Atom("E", {x, y})), Int(1));  // endpoints
  auto stream = SolutionStream::Open(phi, a);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ((*stream)->Next(), ElemId{0});
  EXPECT_EQ((*stream)->CandidatesLeft(), 99u);
}

TEST(SolutionStream, RejectsWideConditions) {
  Structure a = EncodeGraph(MakePath(4));
  Var x = VarNamed("ewx"), y = VarNamed("ewy");
  auto stream = SolutionStream::Open(Atom("E", {x, y}), a);
  EXPECT_FALSE(stream.ok());
}

}  // namespace
}  // namespace focq
