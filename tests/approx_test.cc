// The approximate counting engine (Engine::kApprox, DESIGN.md §3f): sample
// budgets, stratified allocation, the a-priori error bounds the differential
// harness admits, estimator correctness on structures with known exact
// counts, the determinism contract (bit-identical across thread counts and
// warm/cold contexts for a fixed seed), and the error-band harness itself —
// including the exact binomial gate and a deliberately out-of-band subject
// the driver must catch.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "focq/approx/counter_rng.h"
#include "focq/approx/estimator.h"
#include "focq/approx/params.h"
#include "focq/core/api.h"
#include "focq/graph/generators.h"
#include "focq/logic/build.h"
#include "focq/logic/parser.h"
#include "focq/obs/metrics.h"
#include "focq/structure/encode.h"
#include "focq/structure/gaifman.h"
#include "focq/testing/differential.h"
#include "focq/testing/error_band.h"

namespace focq {
namespace {

Formula MustFormula(const std::string& text) {
  Result<Formula> f = ParseFormula(text);
  EXPECT_TRUE(f.ok()) << text << ": " << f.status().ToString();
  return *f;
}

Term MustTerm(const std::string& text) {
  Result<Term> t = ParseTerm(text);
  EXPECT_TRUE(t.ok()) << text << ": " << t.status().ToString();
  return *t;
}

EvalOptions ApproxOptions(double eps = 0.1, double delta = 0.01,
                          std::uint64_t seed = 1) {
  EvalOptions options;
  options.engine = Engine::kApprox;
  options.approx.eps = eps;
  options.approx.delta = delta;
  options.approx.seed = seed;
  return options;
}

// ---------------------------------------------------------------- RNG/params

TEST(CounterRng, DrawsAreAPureFunctionOfTheCounter) {
  CounterRng a(7, 3);
  CounterRng b(7, 3);
  for (std::uint64_t c : {0ULL, 1ULL, 17ULL, 1ULL << 40}) {
    EXPECT_EQ(a.At(c), b.At(c));
    EXPECT_EQ(a.IndexAt(c, 10), b.IndexAt(c, 10));
    EXPECT_LT(a.IndexAt(c, 10), 10u);
  }
  // Different seeds and different streams decorrelate.
  EXPECT_NE(CounterRng(7, 3).At(0), CounterRng(8, 3).At(0));
  EXPECT_NE(CounterRng(7, 3).At(0), CounterRng(7, 4).At(0));
  EXPECT_NE(CounterRng(7, 3).Substream(1).At(0), CounterRng(7, 3).At(0));
}

TEST(ApproxParams, SampleBudgetMatchesHoeffdingAndIsEpsMonotone) {
  // ceil(ln(2/0.01) / (2 * 0.01)) = ceil(264.9...) for the defaults.
  EXPECT_EQ(ApproxSampleBudget(0.1, 0.01), 265);
  EXPECT_GT(ApproxSampleBudget(0.05, 0.01), ApproxSampleBudget(0.1, 0.01));
  EXPECT_GT(ApproxSampleBudget(0.1, 0.001), ApproxSampleBudget(0.1, 0.01));
  // Degenerate parameters clamp instead of overflowing.
  EXPECT_GE(ApproxSampleBudget(1e-9, 1e-9), 1);
  EXPECT_LE(ApproxSampleBudget(1e-9, 1e-9), CountInt{1} << 26);
}

TEST(ApproxParams, ValidateRejectsOutOfRangeEpsAndDelta) {
  ApproxParams p;
  EXPECT_TRUE(ValidateApproxParams(p).ok());
  for (double bad : {0.0, 1.0, -0.5, 2.0}) {
    ApproxParams q;
    q.eps = bad;
    EXPECT_FALSE(ValidateApproxParams(q).ok()) << "eps=" << bad;
    ApproxParams r;
    r.delta = bad;
    EXPECT_FALSE(ValidateApproxParams(r).ok()) << "delta=" << bad;
  }
}

// ------------------------------------------------------- allocation & bounds

TEST(ApproxAllocation, LargestRemainderIsProportionalAndCoversStrata) {
  std::vector<CountInt> alloc = ApproxAllocateSamples(100, {60, 30, 10});
  ASSERT_EQ(alloc.size(), 3u);
  EXPECT_EQ(alloc[0] + alloc[1] + alloc[2], 100);
  EXPECT_EQ(alloc[0], 60);
  EXPECT_EQ(alloc[1], 30);
  EXPECT_EQ(alloc[2], 10);
  // Empty strata draw nothing; tiny non-empty strata still get one sample.
  alloc = ApproxAllocateSamples(10, {1000, 0, 1});
  EXPECT_EQ(alloc[1], 0);
  EXPECT_GE(alloc[2], 1);
  // Deterministic: same inputs, same allocation.
  EXPECT_EQ(ApproxAllocateSamples(7, {3, 3, 3}),
            ApproxAllocateSamples(7, {3, 3, 3}));
}

TEST(ApproxDeviation, BoundShrinksWithMoreSamples) {
  std::optional<CountInt> few = ApproxDeviationBound(100000, 100, 0.01);
  std::optional<CountInt> many = ApproxDeviationBound(100000, 10000, 0.01);
  ASSERT_TRUE(few.has_value());
  ASSERT_TRUE(many.has_value());
  EXPECT_GT(*few, *many);
  EXPECT_EQ(ApproxDeviationBound(0, 100, 0.01), 0);
  EXPECT_EQ(ApproxDeviationBound(100, 0, 0.01), 0);
}

TEST(ApproxErrorBoundTest, ConstantsAndEnumeratedFramesAreExact) {
  ApproxParams params;
  // 3 * 4 + 1: no counting binder at all.
  Term t = MustTerm("(3 * 4 + 1)");
  EXPECT_EQ(ApproxErrorBound(t.node(), 50, params, 1e-12), 0);
  // #(x). on a 10-element universe: frame 10 <= budget 265, enumerated.
  Term small = MustTerm("#(x). (x = x)");
  EXPECT_EQ(ApproxErrorBound(small.node(), 10, params, 1e-12), 0);
  // Two variables on 100 elements: frame 10000 > 265, sampled, positive
  // band that scales with the frame.
  Term big = MustTerm("#(x, y). (x = y)");
  std::optional<CountInt> band =
      ApproxErrorBound(big.node(), 100, params, 1e-12);
  ASSERT_TRUE(band.has_value());
  EXPECT_GT(*band, 0);
  EXPECT_LT(*band, 10000);
}

// ------------------------------------------------------------ the estimator

TEST(ApproxEngine, SmallFramesFallBackToExactEnumeration) {
  // Path on 16 vertices: 30 directed edges; frame 256 <= budget 265.
  Structure a = EncodeGraph(MakePath(16));
  MetricsSink sink;
  EvalOptions options = ApproxOptions();
  options.metrics = &sink;
  Result<CountInt> n =
      CountSolutions(MustFormula("E(x, y)"), a, options);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 30);
  EvalMetrics m = sink.Snapshot();
  EXPECT_EQ(m.counters.at("approx.exact_frames"), 1);
  EXPECT_EQ(m.counters.count("approx.samples_drawn"), 0u);
}

TEST(ApproxEngine, SampledEstimateStaysWithinTheTheoreticalBand) {
  // Star K_{1,399}: 798 directed edges over a 160000-assignment frame.
  Structure a = EncodeGraph(MakeCompleteBipartite(1, 399));
  Term t = MustTerm("#(x, y). (E(x, y))");
  MetricsSink sink;
  EvalOptions options = ApproxOptions();
  options.metrics = &sink;
  Result<CountInt> estimate = EvaluateGroundTerm(t, a, options);
  ASSERT_TRUE(estimate.ok()) << estimate.status().ToString();
  std::optional<CountInt> band =
      ApproxErrorBound(t.node(), a.Order(), options.approx, 1e-9);
  ASSERT_TRUE(band.has_value());
  CountInt err = *estimate - 798;
  if (err < 0) err = -err;
  EXPECT_LE(err, *band) << "estimate " << *estimate;
  EXPECT_EQ(sink.Snapshot().counters.at("approx.samples_drawn"), 265);
}

TEST(ApproxEngine, DenseFrameEstimateIsAccurate) {
  // K_30: 870 ordered edges over a 900-assignment frame (p ~ 0.97).
  Structure a = EncodeGraph(MakeClique(30));
  Term t = MustTerm("#(x, y). (E(x, y))");
  EvalOptions options = ApproxOptions();
  Result<CountInt> estimate = EvaluateGroundTerm(t, a, options);
  ASSERT_TRUE(estimate.ok());
  std::optional<CountInt> band =
      ApproxErrorBound(t.node(), a.Order(), options.approx, 1e-9);
  ASSERT_TRUE(band.has_value());
  CountInt err = *estimate - 870;
  if (err < 0) err = -err;
  EXPECT_LE(err, *band) << "estimate " << *estimate;
}

TEST(ApproxEngine, ZeroExactCountEstimatesZeroOnTheSampledPath) {
  // An empty relation over 40 elements: frame 1600 > budget, sampled, and
  // every sample misses — the estimate must be exactly 0, exercising the
  // additive (not relative) slack of the band.
  Signature sig;
  sig.AddSymbol("E", 2);
  Structure a(sig, 40);
  Term t = MustTerm("#(x, y). (E(x, y))");
  MetricsSink sink;
  EvalOptions options = ApproxOptions();
  options.metrics = &sink;
  Result<CountInt> estimate = EvaluateGroundTerm(t, a, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(*estimate, 0);
  EXPECT_EQ(sink.Snapshot().counters.at("approx.sample_hits"), 0);
}

TEST(ApproxEngine, EstimatesAreBitIdenticalAcrossThreadCounts) {
  Structure a = EncodeGraph(MakeGrid(20, 20));
  Term t = MustTerm("(#(x, y). (E(x, y)) + 2 * #(x). (E(x, x)))");
  std::optional<CountInt> reference;
  for (int threads : {0, 1, 4}) {
    EvalOptions options = ApproxOptions();
    options.num_threads = threads;
    Result<CountInt> estimate = EvaluateGroundTerm(t, a, options);
    ASSERT_TRUE(estimate.ok()) << "threads=" << threads;
    if (!reference.has_value()) {
      reference = *estimate;
    } else {
      EXPECT_EQ(*estimate, *reference) << "threads=" << threads;
    }
  }
}

TEST(ApproxEngine, SmallerEpsDrawsMoreSamples) {
  Structure a = EncodeGraph(MakeClique(40));  // frame 1600
  Term t = MustTerm("#(x, y). (E(x, y))");
  auto samples_at = [&](double eps) {
    MetricsSink sink;
    EvalOptions options = ApproxOptions(eps);
    options.metrics = &sink;
    Result<CountInt> estimate = EvaluateGroundTerm(t, a, options);
    EXPECT_TRUE(estimate.ok());
    return sink.Snapshot().counters.at("approx.samples_drawn");
  };
  EXPECT_GT(samples_at(0.05), samples_at(0.2));
}

TEST(ApproxEngine, WarmContextIsBitIdenticalToColdForAFixedSeed) {
  Structure a = EncodeGraph(MakePath(30));  // frame 900 > budget
  Term t = MustTerm("#(x, y). (E(x, y))");
  EvalOptions options = ApproxOptions();
  options.approx.stratify = true;
  Result<CountInt> cold = EvaluateGroundTerm(t, a, options);
  ASSERT_TRUE(cold.ok());

  EvalContext ctx(a);
  options.context = &ctx;
  MetricsSink sink;
  options.metrics = &sink;
  Result<CountInt> prime = EvaluateGroundTerm(t, a, options);
  Result<CountInt> warm = EvaluateGroundTerm(t, a, options);
  ASSERT_TRUE(prime.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(*prime, *cold);
  EXPECT_EQ(*warm, *cold);
  // The second stratified run must serve its sphere typing from the cache
  // (and say so through the reuse counter).
  EXPECT_GT(ctx.cache_stats().hits, 0);
  EXPECT_EQ(sink.Snapshot().counters.at("approx.strata_reused"), 1);
}

TEST(ApproxEngine, StratifiedAndUnstratifiedBothLandInBand) {
  Structure a = EncodeGraph(MakeCompleteBipartite(1, 399));
  Term t = MustTerm("#(x, y). (E(x, y))");
  for (bool stratify : {false, true}) {
    EvalOptions options = ApproxOptions();
    options.approx.stratify = stratify;
    Result<CountInt> estimate = EvaluateGroundTerm(t, a, options);
    ASSERT_TRUE(estimate.ok()) << "stratify=" << stratify;
    const SphereTypeAssignment* strata = nullptr;
    std::optional<SphereTypeAssignment> typing;
    if (stratify) {
      Graph gaifman = BuildGaifmanGraph(a);
      typing.emplace(ComputeSphereTypes(a, gaifman, 1));
      strata = &*typing;
    }
    std::optional<CountInt> band =
        ApproxErrorBound(t.node(), a.Order(), options.approx, 1e-9, strata);
    ASSERT_TRUE(band.has_value());
    CountInt err = *estimate - 798;
    if (err < 0) err = -err;
    EXPECT_LE(err, *band) << "stratify=" << stratify << " estimate "
                          << *estimate;
  }
}

TEST(ApproxEngine, BooleansStayExact) {
  Structure a = EncodeGraph(MakeCycle(24));
  // A sentence with a counting term big enough to sample if it were not
  // routed through the exact pipeline.
  Formula sentence =
      MustFormula("@ge1(#(x, y). (E(x, y)) - 47)");
  MetricsSink sink;
  EvalOptions options = ApproxOptions();
  options.metrics = &sink;
  Result<bool> approx = ModelCheck(sentence, a, options);
  EvalOptions exact;
  Result<bool> local = ModelCheck(sentence, a, exact);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(*approx, *local);  // 48 directed edges: 48 - 47 >= 1 holds
  EXPECT_TRUE(*approx);
  EXPECT_EQ(sink.Snapshot().counters.at("approx.boolean_exact"), 1);
}

TEST(ApproxEngine, QueryRowsAreExactAndHeadCountsAreBanded) {
  Structure a = EncodeGraph(MakeCycle(24));
  Foc1Query q;
  Result<Formula> cond = ParseFormula("E(x, y)");
  ASSERT_TRUE(cond.ok());
  q.condition = *cond;
  q.head_vars = FreeVars(q.condition);
  Term head = MustTerm("#(u, v). (E(u, v))");
  q.head_terms = {head};

  EvalOptions exact;
  Result<QueryResult> want = EvaluateQuery(q, a, exact);
  ASSERT_TRUE(want.ok());
  EvalOptions options = ApproxOptions();
  Result<QueryResult> got = EvaluateQuery(q, a, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  ASSERT_EQ(got->rows.size(), want->rows.size());
  std::optional<CountInt> band =
      ApproxErrorBound(head.node(), a.Order(), options.approx, 1e-9);
  ASSERT_TRUE(band.has_value());
  for (std::size_t i = 0; i < want->rows.size(); ++i) {
    EXPECT_EQ(got->rows[i].elements, want->rows[i].elements);
    ASSERT_EQ(got->rows[i].counts.size(), 1u);
    CountInt err = got->rows[i].counts[0] - want->rows[i].counts[0];
    if (err < 0) err = -err;
    EXPECT_LE(err, *band);
  }
  // The head term is ground (no free variable of the row), so every row gets
  // the same draws and hence the identical estimate.
  for (std::size_t i = 1; i < got->rows.size(); ++i) {
    EXPECT_EQ(got->rows[i].counts[0], got->rows[0].counts[0]);
  }
}

// ------------------------------------------------------------ the error band

TEST(ErrorBand, BinomialUpperTailMatchesHandComputedValues) {
  EXPECT_DOUBLE_EQ(fuzz::BinomialUpperTail(2, 0, 0.5), 1.0);
  EXPECT_NEAR(fuzz::BinomialUpperTail(2, 1, 0.5), 0.75, 1e-12);
  EXPECT_NEAR(fuzz::BinomialUpperTail(2, 2, 0.5), 0.25, 1e-12);
  EXPECT_EQ(fuzz::BinomialUpperTail(2, 3, 0.5), 0.0);
  EXPECT_NEAR(fuzz::BinomialUpperTail(10, 1, 0.1),
              1.0 - std::pow(0.9, 10), 1e-12);
}

TEST(ErrorBand, FailureGateAcceptsDeltaConsistentRatesOnly) {
  // 0 or 1 failures in 100 trials at delta = 0.01: plainly consistent.
  EXPECT_TRUE(fuzz::FailureRateConsistentWithDelta(100, 0, 0.01));
  EXPECT_TRUE(fuzz::FailureRateConsistentWithDelta(100, 1, 0.01));
  // Half the runs failing is inconsistent beyond any doubt.
  EXPECT_FALSE(fuzz::FailureRateConsistentWithDelta(100, 50, 0.01));
  EXPECT_FALSE(fuzz::FailureRateConsistentWithDelta(20, 20, 0.01));
}

TEST(ErrorBand, CheckErrorBandFlagsExactlyTheOutOfBandColumns) {
  std::vector<QueryRow> exact = {QueryRow{{0}, {100}}, QueryRow{{1}, {50}}};
  std::vector<QueryRow> close = {QueryRow{{0}, {104}}, QueryRow{{1}, {47}}};
  std::vector<QueryRow> far = {QueryRow{{0}, {100}}, QueryRow{{1}, {1000000}}};
  EXPECT_FALSE(fuzz::CheckErrorBand(exact, close, {5}).has_value());
  EXPECT_TRUE(fuzz::CheckErrorBand(exact, close, {3}).has_value());
  // nullopt bound: the column is unverifiable and never flagged.
  EXPECT_FALSE(fuzz::CheckErrorBand(exact, far, {std::nullopt}).has_value());
  // Mismatched row membership is always a failure.
  std::vector<QueryRow> renamed = {QueryRow{{2}, {100}}, QueryRow{{1}, {50}}};
  EXPECT_TRUE(fuzz::CheckErrorBand(exact, renamed, {5}).has_value());
}

// -------------------------------------------------------------- the harness

fuzz::DiffCase PathCountCase() {
  fuzz::DiffCase c;
  c.mode = fuzz::CaseMode::kCount;
  c.formula = MustFormula("E(x, y)");
  c.structure = EncodeGraph(MakePath(30));  // frame 900: sampled path
  return c;
}

TEST(ApproxHarness, RealEngineAgreesOnAKnownCase) {
  fuzz::ApproxDiffConfig config;
  EXPECT_FALSE(fuzz::RunApproxCase(PathCountCase(), config).has_value());
  EXPECT_FALSE(fuzz::RunApproxTrials(PathCountCase(), config, 10).has_value());
}

TEST(ApproxHarness, CatchesAnOutOfBandSubject) {
  // A subject whose estimates are inflated far beyond any admissible band.
  fuzz::ApproxDiffConfig config;
  config.subject = [](const fuzz::DiffCase& c, const EvalOptions& options) {
    fuzz::Outcome out = fuzz::RunSubject(c, options);
    for (QueryRow& row : out.rows) {
      for (CountInt& count : row.counts) count += 1000000;
    }
    return out;
  };
  std::optional<fuzz::DiffFailure> failure =
      fuzz::RunApproxCase(PathCountCase(), config);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->description.find("band"), std::string::npos)
      << failure->description;
  // The repeated-trial gate catches it too: every trial violates the
  // delta-level band, which is statistically impossible at delta = 0.01.
  EXPECT_TRUE(fuzz::RunApproxTrials(PathCountCase(), config, 20).has_value());
}

TEST(ApproxHarness, CatchesSeedDependentNondeterminism) {
  // A subject that perturbs results per thread count (simulating a chunking
  // bug): band-compatible, but it breaks the bit-identity contract.
  fuzz::ApproxDiffConfig config;
  config.stratify_modes = {false};
  config.subject = [](const fuzz::DiffCase& c, const EvalOptions& options) {
    fuzz::Outcome out = fuzz::RunSubject(c, options);
    if (options.num_threads > 1) {
      for (QueryRow& row : out.rows) {
        for (CountInt& count : row.counts) count += 1;
      }
    }
    return out;
  };
  std::optional<fuzz::DiffFailure> failure =
      fuzz::RunApproxCase(PathCountCase(), config);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->description.find("nondeterministic"), std::string::npos)
      << failure->description;
}

TEST(ApproxHarness, StripsApproxMetricsFromDeterminismComparison) {
  EXPECT_TRUE(fuzz::IsApproxMetric("approx.samples_drawn"));
  EXPECT_TRUE(fuzz::IsApproxMetric("approx.strata_reused"));
  EXPECT_FALSE(fuzz::IsApproxMetric("naive.tuples"));
  EXPECT_FALSE(fuzz::IsApproxMetric("cover_eval.clusters"));
}

}  // namespace
}  // namespace focq
