// Shared helpers for the focq test suite. The seeded random builders live in
// the focq_testing library (src/focq/testing/) so the unit tests and the
// fuzzing harness (tools/focq_fuzz) draw from one distribution; this header
// re-exports them under the historical focq::test names.
#ifndef FOCQ_TESTS_TEST_UTIL_H_
#define FOCQ_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "focq/structure/structure.h"
#include "focq/testing/formula_gen.h"
#include "focq/testing/structure_gen.h"
#include "focq/util/rng.h"

namespace focq::test {

/// A random sparse graph structure ({E/2}, symmetric) with n elements.
inline Structure RandomGraphStructure(std::size_t n, double edge_per_node,
                                      Rng* rng) {
  return fuzz::RandomGraphStructure(n, edge_per_node, rng);
}

/// A random two-relation structure: binary E plus unary R ("red").
inline Structure RandomColoredStructure(std::size_t n, double edge_per_node,
                                        double red_fraction, Rng* rng) {
  return fuzz::RandomColoredStructure(n, edge_per_node, red_fraction, rng);
}

/// A random quantifier-free formula over the given variables, using E, R
/// (if `with_color`), equality and dist atoms with bound <= max_dist.
inline Formula RandomQuantifierFree(const std::vector<Var>& vars, int depth,
                                    bool with_color, std::uint32_t max_dist,
                                    Rng* rng) {
  return fuzz::RandomQuantifierFree(vars, depth, with_color, max_dist, rng);
}

/// A random *guarded* kernel over `vars`: quantifier-free pieces plus
/// ball-guarded quantifiers anchored at the given variables.
inline Formula RandomGuardedKernel(const std::vector<Var>& vars, int depth,
                                   bool with_color, std::uint32_t max_guard,
                                   Rng* rng, int quantifier_budget = 2) {
  return fuzz::RandomGuardedKernel(vars, depth, with_color, max_guard, rng,
                                   quantifier_budget);
}

}  // namespace focq::test

#endif  // FOCQ_TESTS_TEST_UTIL_H_
