// Shared helpers for the focq test suite: deterministic random structures,
// random guarded kernels, and random FOC1 expressions for differential
// testing of the evaluation engines against the naive reference semantics.
#ifndef FOCQ_TESTS_TEST_UTIL_H_
#define FOCQ_TESTS_TEST_UTIL_H_

#include <vector>

#include "focq/graph/generators.h"
#include "focq/locality/local_eval.h"
#include "focq/logic/build.h"
#include "focq/structure/encode.h"
#include "focq/structure/structure.h"
#include "focq/util/rng.h"

namespace focq::test {

/// A random sparse graph structure ({E/2}, symmetric) with n elements.
inline Structure RandomGraphStructure(std::size_t n, double edge_per_node,
                                      Rng* rng) {
  Graph g(n);
  std::size_t edges = static_cast<std::size_t>(edge_per_node * n);
  for (std::size_t i = 0; i < edges && n >= 2; ++i) {
    VertexId u = static_cast<VertexId>(rng->NextBelow(n));
    VertexId v = static_cast<VertexId>(rng->NextBelow(n));
    if (u != v) g.AddEdge(u, v);
  }
  g.Finalize();
  return EncodeGraph(g);
}

/// A random two-relation structure: binary E plus unary R ("red").
inline Structure RandomColoredStructure(std::size_t n, double edge_per_node,
                                        double red_fraction, Rng* rng) {
  Structure base = RandomGraphStructure(n, edge_per_node, rng);
  std::vector<ElemId> reds;
  for (ElemId e = 0; e < n; ++e) {
    if (rng->NextBool(red_fraction)) reds.push_back(e);
  }
  base.AddUnarySymbol("R", reds);
  return base;
}

/// A random quantifier-free formula over the given variables, using E, R
/// (if `with_color`), equality and dist atoms with bound <= max_dist.
inline Formula RandomQuantifierFree(const std::vector<Var>& vars, int depth,
                                    bool with_color, std::uint32_t max_dist,
                                    Rng* rng) {
  if (depth == 0 || rng->NextBool(0.35)) {
    Var x = vars[rng->NextBelow(vars.size())];
    Var y = vars[rng->NextBelow(vars.size())];
    switch (rng->NextBelow(with_color ? 4 : 3)) {
      case 0:
        return Atom("E", {x, y});
      case 1:
        return Eq(x, y);
      case 2:
        return DistAtMost(x, y, static_cast<std::uint32_t>(
                                    rng->NextBelow(max_dist + 1)));
      default:
        return Atom("R", {x});
    }
  }
  switch (rng->NextBelow(3)) {
    case 0:
      return Not(RandomQuantifierFree(vars, depth - 1, with_color, max_dist, rng));
    case 1:
      return Or(RandomQuantifierFree(vars, depth - 1, with_color, max_dist, rng),
                RandomQuantifierFree(vars, depth - 1, with_color, max_dist, rng));
    default:
      return And(RandomQuantifierFree(vars, depth - 1, with_color, max_dist, rng),
                 RandomQuantifierFree(vars, depth - 1, with_color, max_dist, rng));
  }
}

/// A random *guarded* kernel over `vars`: quantifier-free pieces plus
/// ball-guarded quantifiers anchored at the given variables.
inline Formula RandomGuardedKernel(const std::vector<Var>& vars, int depth,
                                   bool with_color, std::uint32_t max_guard,
                                   Rng* rng, int quantifier_budget = 2) {
  if (depth == 0 || quantifier_budget == 0 || rng->NextBool(0.4)) {
    return RandomQuantifierFree(vars, depth, with_color, max_guard, rng);
  }
  switch (rng->NextBelow(4)) {
    case 0: {
      Var anchor = vars[rng->NextBelow(vars.size())];
      Var fresh = FreshVar("q");
      std::vector<Var> inner = vars;
      inner.push_back(fresh);
      std::uint32_t d = static_cast<std::uint32_t>(rng->NextBelow(max_guard) + 1);
      return GuardedExists(fresh, anchor, d,
                           RandomGuardedKernel(inner, depth - 1, with_color,
                                               max_guard, rng,
                                               quantifier_budget - 1));
    }
    case 1: {
      Var anchor = vars[rng->NextBelow(vars.size())];
      Var fresh = FreshVar("q");
      std::vector<Var> inner = vars;
      inner.push_back(fresh);
      std::uint32_t d = static_cast<std::uint32_t>(rng->NextBelow(max_guard) + 1);
      return GuardedForall(fresh, anchor, d,
                           RandomGuardedKernel(inner, depth - 1, with_color,
                                               max_guard, rng,
                                               quantifier_budget - 1));
    }
    case 2:
      return Or(RandomGuardedKernel(vars, depth - 1, with_color, max_guard, rng,
                                    quantifier_budget),
                RandomGuardedKernel(vars, depth - 1, with_color, max_guard, rng,
                                    quantifier_budget));
    default:
      return And(RandomGuardedKernel(vars, depth - 1, with_color, max_guard,
                                     rng, quantifier_budget),
                 Not(RandomGuardedKernel(vars, depth - 1, with_color, max_guard,
                                         rng, quantifier_budget)));
  }
}

}  // namespace focq::test

#endif  // FOCQ_TESTS_TEST_UTIL_H_
