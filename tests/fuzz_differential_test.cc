// The fuzzing harness tested as a library: generator well-formedness, the
// differential driver on real engine runs, catch-and-shrink of an injected
// miscount, and the .case round trip. tools/focq_fuzz is a thin CLI over
// exactly these entry points.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "focq/logic/fragment.h"
#include "focq/logic/printer.h"
#include "focq/structure/io.h"
#include "focq/testing/case_io.h"
#include "focq/testing/differential.h"
#include "focq/testing/shrink.h"

namespace focq {
namespace {

using fuzz::CaseMode;
using fuzz::DiffCase;
using fuzz::DiffConfig;
using fuzz::DiffFailure;
using fuzz::FormulaGenOptions;
using fuzz::FormulaGenerator;
using fuzz::StructureGenOptions;

TEST(FormulaGen, ProducesWellFormedFOC1) {
  Signature sig({{"E", 2}, {"C0", 1}});
  Rng rng(11);
  FormulaGenOptions options;
  for (int i = 0; i < 60; ++i) {
    FormulaGenerator gen(sig, options, &rng);
    Formula phi = gen.GenerateFormula();
    EXPECT_TRUE(IsFOC1(phi)) << ToString(phi);
    EXPECT_TRUE(CheckSymbols(phi, sig).ok()) << ToString(phi);
    // Free variables come from the documented pool.
    for (Var v : FreeVars(phi)) {
      EXPECT_TRUE(v == VarNamed("fz0") || v == VarNamed("fz1"))
          << ToString(phi);
    }
    Term t = gen.GenerateGroundTerm();
    EXPECT_TRUE(FreeVars(t).empty()) << ToString(t);
    EXPECT_TRUE(IsFOC1(t)) << ToString(t);
  }
}

TEST(FormulaGen, SentencesHaveNoFreeVariables) {
  Signature sig({{"E", 2}});
  Rng rng(5);
  FormulaGenOptions options;
  for (int i = 0; i < 40; ++i) {
    FormulaGenerator gen(sig, options, &rng);
    Formula phi = gen.GenerateFormula({});
    EXPECT_TRUE(FreeVars(phi).empty()) << ToString(phi);
  }
}

TEST(FormulaGen, DeterministicInSeed) {
  Signature sig({{"E", 2}});
  FormulaGenOptions options;
  Rng a(99), b(99);
  FormulaGenerator ga(sig, options, &a), gb(sig, options, &b);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ToString(ga.GenerateFormula()), ToString(gb.GenerateFormula()));
  }
}

TEST(StructureGen, RespectsUniverseBoundsAndSeed) {
  StructureGenOptions options;
  options.min_universe = 3;
  options.max_universe = 15;
  Rng rng(21);
  for (int i = 0; i < 40; ++i) {
    fuzz::StructureClass cls;
    Structure a = fuzz::GenerateStructure(options, &rng, &cls);
    // Grids may round the universe up to a full rows x cols rectangle.
    EXPECT_GE(a.Order(), options.min_universe);
    EXPECT_LE(a.Order(), options.max_universe + 6) << StructureClassName(cls);
    EXPECT_TRUE(a.signature().Find("E").has_value());
  }
  Rng r1(77), r2(77);
  EXPECT_EQ(WriteStructure(fuzz::GenerateStructure(options, &r1)),
            WriteStructure(fuzz::GenerateStructure(options, &r2)));
}

TEST(StructureGen, EveryClassGenerates) {
  for (fuzz::StructureClass cls : fuzz::AllStructureClasses()) {
    StructureGenOptions options;
    options.cls = cls;
    options.min_universe = 4;
    options.max_universe = 10;
    Rng rng(3);
    Structure a = fuzz::GenerateStructure(options, &rng);
    EXPECT_GE(a.Order(), 4u) << StructureClassName(cls);
    // Round-trips through the class name table.
    EXPECT_EQ(fuzz::ParseStructureClass(fuzz::StructureClassName(cls)), cls);
  }
}

TEST(Differential, RandomCasesAgreeWithTheOracle) {
  StructureGenOptions structure_options;
  structure_options.max_universe = 14;
  FormulaGenOptions formula_options;
  DiffConfig config;
  Rng rng(2024);
  for (int i = 0; i < 60; ++i) {
    DiffCase c = fuzz::GenerateCase(structure_options, formula_options, &rng);
    std::optional<DiffFailure> failure = fuzz::RunCase(c, config);
    EXPECT_FALSE(failure.has_value())
        << "case " << i << ":\n" << failure->description;
    if (failure.has_value()) break;
  }
}

TEST(Differential, InjectedMiscountIsCaughtAndShrunkSmall) {
  DiffConfig faulty;
  faulty.subject = fuzz::MiscountingSubject;
  StructureGenOptions structure_options;
  structure_options.min_universe = 6;
  structure_options.max_universe = 16;
  FormulaGenOptions formula_options;

  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 100 && !caught; ++seed) {
    Rng rng(seed);
    DiffCase c = fuzz::GenerateCase(structure_options, formula_options, &rng);
    std::optional<DiffFailure> failure = fuzz::RunCase(c, faulty);
    if (!failure.has_value()) continue;
    caught = true;

    auto still_fails = [&](const DiffCase& cs) {
      return fuzz::RunCase(cs, faulty).has_value();
    };
    fuzz::ShrinkStats stats;
    DiffCase shrunk = fuzz::Shrink(failure->c, still_fails, {}, &stats);
    EXPECT_LE(shrunk.structure.Order(), 10u);
    EXPECT_GT(stats.evaluations, 0u);
    EXPECT_TRUE(still_fails(shrunk));
    // The same case must pass under the real engines: the failure is the
    // injected bug, not a latent engine disagreement.
    EXPECT_FALSE(fuzz::RunCase(shrunk, DiffConfig{}).has_value());
  }
  EXPECT_TRUE(caught) << "no seed in [1,100] triggered the injected bug";
}

TEST(Differential, ShrinkIsDeterministic) {
  DiffConfig faulty;
  faulty.subject = fuzz::MiscountingSubject;
  StructureGenOptions structure_options;
  structure_options.min_universe = 6;
  structure_options.max_universe = 16;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    DiffCase c =
        fuzz::GenerateCase(structure_options, FormulaGenOptions{}, &rng);
    if (!fuzz::RunCase(c, faulty).has_value()) continue;
    auto still_fails = [&](const DiffCase& cs) {
      return fuzz::RunCase(cs, faulty).has_value();
    };
    DiffCase s1 = fuzz::Shrink(c, still_fails);
    DiffCase s2 = fuzz::Shrink(c, still_fails);
    EXPECT_EQ(fuzz::WriteCase(s1), fuzz::WriteCase(s2));
    return;
  }
  FAIL() << "no failing case found to shrink";
}

TEST(CaseIo, RoundTripsEveryMode) {
  StructureGenOptions structure_options;
  structure_options.max_universe = 10;
  FormulaGenOptions formula_options;
  Rng rng(404);
  std::set<CaseMode> seen;
  for (int i = 0; i < 40; ++i) {
    DiffCase c = fuzz::GenerateCase(structure_options, formula_options, &rng);
    seen.insert(c.mode);
    Result<DiffCase> back = fuzz::ReadCase(fuzz::WriteCase(c));
    ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n"
                           << fuzz::WriteCase(c);
    EXPECT_EQ(back->mode, c.mode);
    if (c.mode == CaseMode::kTerm) {
      EXPECT_EQ(ToString(back->term), ToString(c.term));
    } else {
      EXPECT_EQ(ToString(back->formula), ToString(c.formula));
    }
    ASSERT_EQ(back->head_terms.size(), c.head_terms.size());
    for (std::size_t j = 0; j < c.head_terms.size(); ++j) {
      EXPECT_EQ(ToString(back->head_terms[j]), ToString(c.head_terms[j]));
    }
    EXPECT_EQ(WriteStructure(back->structure), WriteStructure(c.structure));
  }
  EXPECT_EQ(seen.size(), 4u) << "40 draws should hit all four modes";
}

TEST(CaseIo, RejectsMalformedInput) {
  EXPECT_FALSE(fuzz::ReadCase("").ok());
  EXPECT_FALSE(fuzz::ReadCase("mode bogus\nformula true\nstructure\n"
                              "universe 1\n").ok());
  EXPECT_FALSE(fuzz::ReadCase("mode count\nformula ((\nstructure\n"
                              "universe 1\n").ok());
  EXPECT_FALSE(fuzz::ReadCase("mode count\nformula true\n").ok());
}

TEST(CaseIo, SnippetMentionsTheCase) {
  Rng rng(17);
  DiffCase c = fuzz::GenerateCase(StructureGenOptions{}, FormulaGenOptions{},
                                  &rng);
  std::string snippet = fuzz::CaseToCppSnippet(c);
  EXPECT_NE(snippet.find("Structure"), std::string::npos);
  EXPECT_NE(snippet.find("Engine::kNaive"), std::string::npos);
  EXPECT_NE(snippet.find("Engine::kLocal"), std::string::npos);
}

TEST(Shrink, DropPrimitives) {
  Structure a(Signature({{"E", 2}, {"C", 1}}), 4);
  a.AddTuple(0, {0, 1});
  a.AddTuple(0, {1, 0});
  a.AddTuple(0, {2, 3});
  a.AddTuple(1, {3});

  Structure fewer = fuzz::DropTuple(a, 0, 2);  // drop (2,3)
  EXPECT_EQ(fewer.Order(), 4u);
  EXPECT_EQ(fewer.relation(0).NumTuples(), 2u);
  EXPECT_TRUE(fewer.Holds(0, {0, 1}));
  EXPECT_FALSE(fewer.Holds(0, {2, 3}));
  EXPECT_TRUE(fewer.Holds(1, {3}));

  Structure smaller = fuzz::DropVertex(a, 0);
  EXPECT_EQ(smaller.Order(), 3u);
  // Tuples not mentioning the dropped vertex survive with renumbering.
  EXPECT_EQ(smaller.relation(0).NumTuples(), 1u);
  EXPECT_EQ(smaller.relation(1).NumTuples(), 1u);
}

}  // namespace
}  // namespace focq
