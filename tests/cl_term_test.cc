#include <gtest/gtest.h>

#include "focq/eval/naive_eval.h"
#include "focq/graph/generators.h"
#include "focq/locality/cl_term.h"
#include "focq/locality/delta.h"
#include "focq/logic/build.h"
#include "focq/logic/printer.h"
#include "focq/structure/encode.h"
#include "focq/structure/gaifman.h"
#include "test_util.h"

namespace focq {
namespace {

TEST(Delta, ClosenessGraphMatchesDistances) {
  Structure a = EncodeGraph(MakePath(8));
  Graph g = BuildGaifmanGraph(a);
  BallExplorer explorer(g);
  // Tuple (0, 2, 7) at r=2: 0-2 close, 7 far from both.
  PatternGraph p = ClosenessGraph(&explorer, {0, 2, 7}, 2);
  EXPECT_TRUE(p.HasEdge(0, 1));
  EXPECT_FALSE(p.HasEdge(0, 2));
  EXPECT_FALSE(p.HasEdge(1, 2));
  // Repeated elements are at distance 0.
  PatternGraph q = ClosenessGraph(&explorer, {3, 3}, 0);
  EXPECT_TRUE(q.HasEdge(0, 1));
}

TEST(Delta, FormulaAgreesWithSemantics) {
  Rng rng(7);
  Structure a = test::RandomGraphStructure(15, 1.5, &rng);
  Graph g = BuildGaifmanGraph(a);
  BallExplorer explorer(g);
  NaiveEvaluator eval(a);
  Var x = VarNamed("dex"), y = VarNamed("dey"), z = VarNamed("dez");
  for (const PatternGraph& p : PatternGraph::AllGraphs(3)) {
    Formula delta = DeltaFormula(p, 2, {x, y, z});
    for (int t = 0; t < 12; ++t) {
      Tuple tuple = {static_cast<ElemId>(rng.NextBelow(15)),
                     static_cast<ElemId>(rng.NextBelow(15)),
                     static_cast<ElemId>(rng.NextBelow(15))};
      bool semantic = ClosenessGraph(&explorer, tuple, 2) == p;
      bool symbolic = eval.Satisfies(
          delta, {{x, tuple[0]}, {y, tuple[1]}, {z, tuple[2]}});
      EXPECT_EQ(semantic, symbolic);
    }
  }
}

TEST(Delta, ExactlyOnePatternPerTuple) {
  Rng rng(8);
  Structure a = test::RandomGraphStructure(12, 1.2, &rng);
  Graph g = BuildGaifmanGraph(a);
  BallExplorer explorer(g);
  for (int t = 0; t < 20; ++t) {
    Tuple tuple = {static_cast<ElemId>(rng.NextBelow(12)),
                   static_cast<ElemId>(rng.NextBelow(12)),
                   static_cast<ElemId>(rng.NextBelow(12))};
    int matches = 0;
    for (const PatternGraph& p : PatternGraph::AllGraphs(3)) {
      if (ClosenessGraph(&explorer, tuple, 3) == p) ++matches;
    }
    EXPECT_EQ(matches, 1);
  }
}

TEST(ClosenessOracle, MatchesBoundedDistance) {
  Rng rng(9);
  Graph g = MakeRandomSparse(40, 3, &rng);
  ClosenessOracle oracle(g, 2);
  for (VertexId u = 0; u < 40; ++u) {
    for (VertexId v = 0; v < 40; ++v) {
      bool expected = BoundedDistance(g, u, v, 2) != kInfiniteDistance;
      EXPECT_EQ(oracle.Close(u, v), expected);
    }
  }
}

TEST(ClTermAlgebra, PolynomialOps) {
  ClTerm five = ClTerm::Constant(5);
  ClTerm zero = ClTerm::Constant(0);
  EXPECT_TRUE(zero.IsZero());
  EXPECT_FALSE(five.IsZero());
  ClTerm sum = ClTerm::Add(five, ClTerm::Constant(-5));
  EXPECT_TRUE(sum.IsZero());  // zero monomials are dropped
  ClTerm prod = ClTerm::Mul(ClTerm::Constant(3), ClTerm::Constant(4));
  EXPECT_EQ(prod.NumMonomials(), 1u);
  EXPECT_TRUE(prod.IsGround());

  BasicClTerm basic;
  basic.vars = {VarNamed("ca")};
  basic.unary = false;
  basic.kernel = Atom("R", {VarNamed("ca")});
  basic.radius = 0;
  basic.pattern = PatternGraph(1, 0);
  ClTerm b = ClTerm::FromBasic(basic);
  ClTerm combined = ClTerm::Sub(ClTerm::Mul(b, b), b);
  EXPECT_EQ(combined.NumBasics(), 1u);  // structural interning merges
  EXPECT_EQ(combined.NumMonomials(), 2u);
}

// Ball evaluation of a basic cl-term must equal naive counting of
// kernel /\ delta_{G,2r+1}.
TEST(ClTermBallEval, MatchesNaiveOnRandomInputs) {
  Rng rng(404);
  Var y1 = VarNamed("cty1"), y2 = VarNamed("cty2"), y3 = VarNamed("cty3");
  std::vector<Var> vars = {y1, y2, y3};
  for (int round = 0; round < 12; ++round) {
    Structure a = test::RandomColoredStructure(14, 1.3, 0.4, &rng);
    Graph gaifman = BuildGaifmanGraph(a);
    ClTermBallEvaluator ball(a, gaifman);
    NaiveEvaluator naive(a);
    std::uint32_t r = static_cast<std::uint32_t>(rng.NextBelow(2));
    Formula kernel = test::RandomQuantifierFree(vars, 2, true, r, &rng);
    for (const PatternGraph& p : PatternGraph::AllGraphs(3)) {
      if (!p.IsConnected()) continue;
      BasicClTerm basic{vars, /*unary=*/false, kernel, r, p};
      Result<CountInt> fast = ball.EvaluateBasicGround(basic);
      ASSERT_TRUE(fast.ok());
      Term reference =
          Count(vars, And(kernel, DeltaFormula(p, 2 * r + 1, vars)));
      EXPECT_EQ(*fast, *naive.Evaluate(reference))
          << ToString(kernel) << " pattern=" << p.edge_mask() << " r=" << r;

      BasicClTerm unary = basic;
      unary.unary = true;
      Result<std::vector<CountInt>> per_elem = ball.EvaluateBasicAll(unary);
      ASSERT_TRUE(per_elem.ok());
      Term unary_ref = Count(
          {y2, y3}, And(kernel, DeltaFormula(p, 2 * r + 1, vars)));
      for (ElemId e = 0; e < a.universe_size(); ++e) {
        EXPECT_EQ((*per_elem)[e], *naive.Evaluate(unary_ref, {{y1, e}}));
      }
    }
  }
}

TEST(ClTermBallEval, GroundIsSumOfUnary) {
  Rng rng(505);
  Structure a = test::RandomColoredStructure(20, 1.5, 0.3, &rng);
  Graph gaifman = BuildGaifmanGraph(a);
  ClTermBallEvaluator ball(a, gaifman);
  Var y1 = VarNamed("gsy1"), y2 = VarNamed("gsy2");
  PatternGraph edge(2, 0);
  edge.SetEdge(0, 1);
  BasicClTerm basic{{y1, y2}, false, Atom("E", {y1, y2}), 0, edge};
  BasicClTerm unary = basic;
  unary.unary = true;
  Result<std::vector<CountInt>> per_elem = ball.EvaluateBasicAll(unary);
  ASSERT_TRUE(per_elem.ok());
  CountInt total = 0;
  for (CountInt v : *per_elem) total += v;
  EXPECT_EQ(total, *ball.EvaluateBasicGround(basic));
}

TEST(ClTermBallEval, CombinedPolynomials) {
  // (#edges-pattern)^2 - #red via cl-term algebra.
  Rng rng(606);
  Structure a = test::RandomColoredStructure(16, 1.4, 0.5, &rng);
  Graph gaifman = BuildGaifmanGraph(a);
  ClTermBallEvaluator ball(a, gaifman);
  NaiveEvaluator naive(a);
  Var y1 = VarNamed("cpy1"), y2 = VarNamed("cpy2");
  PatternGraph edge(2, 0);
  edge.SetEdge(0, 1);
  PatternGraph single(1, 0);
  BasicClTerm edges{{y1, y2}, false, Atom("E", {y1, y2}), 0, edge};
  BasicClTerm reds{{y1}, false, Atom("R", {y1}), 0, single};
  ClTerm combined = ClTerm::Sub(
      ClTerm::Mul(ClTerm::FromBasic(edges), ClTerm::FromBasic(edges)),
      ClTerm::FromBasic(reds));
  CountInt e = *naive.Evaluate(
      Count({y1, y2}, And(Atom("E", {y1, y2}),
                          DeltaFormula(edge, 1, {y1, y2}))));
  CountInt red = *naive.Evaluate(Count({y1}, Atom("R", {y1})));
  EXPECT_EQ(*ball.EvaluateGround(combined), e * e - red);
}

TEST(RequiredCoverRadius, Formula) {
  BasicClTerm b;
  b.vars = {VarNamed("rc1"), VarNamed("rc2")};
  b.radius = 1;  // separation 3
  b.pattern = PatternGraph(2, 1);
  EXPECT_EQ(RequiredCoverRadius(b), 6u);
}

}  // namespace
}  // namespace focq
