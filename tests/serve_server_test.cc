// End-to-end tests of the focq_serve server library: concurrent clients over
// real loopback sockets, with the central contract checked exhaustively —
// for any interleaving of clients (updates included), the responses are
// bit-identical to a serial replay of the same statements, ordered by the
// server's admission sequence number, through one Session. Thread counts
// {0, 1, 4} cover serial, degenerate-parallel and parallel execution.
#include "focq/serve/server.h"

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "focq/core/api.h"
#include "focq/logic/fragment.h"
#include "focq/logic/parser.h"
#include "focq/obs/querylog.h"
#include "focq/obs/recorder.h"
#include "focq/obs/trace.h"
#include "focq/serve/protocol.h"
#include "focq/serve/socket_util.h"
#include "focq/structure/io.h"
#include "focq/structure/update.h"

namespace focq {
namespace serve {
namespace {

Structure MakePathStructure(std::size_t n) {
  Structure a(Signature({{"E", 2}}), n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const auto u = static_cast<unsigned>(i);
    a.InsertTuple(0, {u, u + 1});
  }
  return a;
}

struct Statement {
  FrameKind kind;
  std::string text;
};

struct Observed {
  std::uint64_t seq = 0;
  Statement statement;
  bool ok = false;
  std::string text;
};

// One client: pipelines its statements over one connection and returns the
// responses matched back to their statements. Runs on a caller thread.
std::vector<Observed> RunClient(std::uint16_t port,
                                const std::vector<Statement>& statements) {
  std::vector<Observed> observed;
  Result<int> fd = ConnectLoopback(port);
  if (!fd.ok()) {
    ADD_FAILURE() << fd.status().ToString();
    return observed;
  }
  std::string wire;
  for (std::size_t i = 0; i < statements.size(); ++i) {
    Request request;
    request.kind = statements[i].kind;
    request.id = static_cast<std::uint32_t>(i + 1);
    request.text = statements[i].text;
    AppendRequestFrame(&wire, request);
  }
  if (Status sent = SendAll(*fd, wire); !sent.ok()) {
    ADD_FAILURE() << sent.ToString();
    CloseFd(*fd);
    return observed;
  }
  FrameDecoder decoder;
  while (observed.size() < statements.size()) {
    Result<std::string> chunk = RecvSome(*fd);
    if (!chunk.ok() || chunk->empty()) {
      ADD_FAILURE() << "connection lost after " << observed.size()
                    << " responses";
      break;
    }
    decoder.Feed(*chunk);
    for (;;) {
      Result<std::optional<Frame>> next = decoder.Next();
      if (!next.ok()) {
        ADD_FAILURE() << next.status().ToString();
        CloseFd(*fd);
        return observed;
      }
      if (!next->has_value()) break;
      Result<Response> response = DecodeResponse(**next);
      if (!response.ok()) {
        ADD_FAILURE() << response.status().ToString();
        continue;
      }
      Observed o;
      o.seq = response->seq;
      o.statement = statements[response->id - 1];
      o.ok = response->ok;
      o.text = response->text;
      observed.push_back(std::move(o));
    }
  }
  CloseFd(*fd);
  return observed;
}

// Serial oracle: exactly the statement semantics of the server / focq_cli
// --batch, driven through one Session over a fresh copy of the structure.
std::string EvalSerial(Session* session, const Statement& statement) {
  const Signature& sig = session->structure().signature();
  switch (statement.kind) {
    case FrameKind::kUpdate: {
      Result<TupleUpdate> update = ParseUpdate(statement.text, sig);
      if (!update.ok()) return update.status().ToString();
      Result<UpdateStats> applied = session->ApplyUpdate(*update);
      if (!applied.ok()) return applied.status().ToString();
      return applied->changed ? "applied" : "noop";
    }
    case FrameKind::kTerm: {
      Result<Term> term = ParseTerm(statement.text);
      if (!term.ok()) return term.status().ToString();
      if (Status symbols = CheckSymbols(*term, sig); !symbols.ok()) {
        return symbols.ToString();
      }
      Result<CountInt> value = session->EvaluateGroundTerm(*term);
      if (!value.ok()) return value.status().ToString();
      return std::to_string(static_cast<long long>(*value));
    }
    case FrameKind::kCheck:
    case FrameKind::kCount: {
      Result<Formula> formula = ParseFormula(statement.text);
      if (!formula.ok()) return formula.status().ToString();
      if (Status symbols = CheckSymbols(*formula, sig); !symbols.ok()) {
        return symbols.ToString();
      }
      if (statement.kind == FrameKind::kCheck) {
        Result<bool> holds = session->ModelCheck(*formula);
        if (!holds.ok()) return holds.status().ToString();
        return *holds ? "true" : "false";
      }
      Result<CountInt> count = session->CountSolutions(*formula);
      if (!count.ok()) return count.status().ToString();
      return std::to_string(static_cast<long long>(*count));
    }
    default:
      return "unsupported";
  }
}

// The tentpole contract: N concurrent clients with a mixed workload
// (including updates and statements that fail), any interleaving, for
// thread counts {0, 1, 4} — every response must equal the serial replay.
TEST(ServeServerTest, ConcurrentMixedWorkloadIsBitIdenticalToSerialReplay) {
  const std::vector<std::vector<Statement>> workloads = {
      {
          {FrameKind::kCheck, "exists x. @ge1(#(y). (E(x, y)) - 1)"},
          {FrameKind::kUpdate, "insert E 0 7"},
          {FrameKind::kCount, "@ge1(#(y). (E(x, y)))"},
          {FrameKind::kTerm, "#(x, y). (E(x, y))"},
          {FrameKind::kUpdate, "delete E 0 7"},
          {FrameKind::kCount, "@ge1(#(y). (E(x, y)))"},
      },
      {
          {FrameKind::kTerm, "#(x, y). (E(x, y))"},
          {FrameKind::kUpdate, "insert E 2 9"},
          {FrameKind::kCheck, "exists x. E(x, x)"},
          {FrameKind::kUpdate, "insert E 2 9"},  // noop the second time
          {FrameKind::kTerm, "#(x). (@ge1(#(y). (E(x, y)) - 2))"},
      },
      {
          {FrameKind::kCount, "E(x, y)"},
          {FrameKind::kUpdate, "insert E 0 99"},  // out of bounds: error
          {FrameKind::kCheck, "(((broken"},       // parse error
          {FrameKind::kUpdate, "delete E 4 5"},
          {FrameKind::kCount, "E(x, y)"},
      },
  };

  for (int threads : {0, 1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Structure served = MakePathStructure(10);
    ServeOptions options;
    options.eval.num_threads = threads;
    Server server(&served, options);
    ASSERT_TRUE(server.Start().ok());

    std::vector<std::vector<Observed>> results(workloads.size());
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      clients.emplace_back([&, i] {
        results[i] = RunClient(server.port(), workloads[i]);
      });
    }
    for (std::thread& t : clients) t.join();
    server.Stop();

    std::vector<Observed> all;
    for (const auto& result : results) {
      all.insert(all.end(), result.begin(), result.end());
    }
    std::size_t total = 0;
    for (const auto& w : workloads) total += w.size();
    ASSERT_EQ(all.size(), total);

    // Admission order is total and strictly increasing.
    std::sort(all.begin(), all.end(),
              [](const Observed& a, const Observed& b) { return a.seq < b.seq; });
    for (std::size_t i = 1; i < all.size(); ++i) {
      ASSERT_NE(all[i].seq, all[i - 1].seq);
    }

    // Replaying in seq order through one Session reproduces every response
    // text bit for bit — errors included.
    Structure replayed = MakePathStructure(10);
    EvalOptions replay_options;
    replay_options.num_threads = threads;
    Session session(&replayed, replay_options);
    for (const Observed& o : all) {
      const std::string expected = EvalSerial(&session, o.statement);
      EXPECT_EQ(o.text, expected)
          << "seq " << o.seq << " " << FrameKindName(o.statement.kind) << " '"
          << o.statement.text << "'";
    }
  }
}

TEST(ServeServerTest, PingShutdownAndWait) {
  Structure served = MakePathStructure(4);
  Server server(&served, ServeOptions{});
  ASSERT_TRUE(server.Start().ok());

  Result<int> fd = ConnectLoopback(server.port());
  ASSERT_TRUE(fd.ok());
  std::string wire;
  AppendRequestFrame(&wire, {FrameKind::kPing, 1, 0, 0, ""});
  AppendRequestFrame(&wire, {FrameKind::kShutdown, 2, 0, 0, ""});
  ASSERT_TRUE(SendAll(*fd, wire).ok());

  FrameDecoder decoder;
  std::vector<Response> responses;
  while (responses.size() < 2) {
    Result<std::string> chunk = RecvSome(*fd);
    ASSERT_TRUE(chunk.ok());
    ASSERT_FALSE(chunk->empty());
    decoder.Feed(*chunk);
    for (;;) {
      Result<std::optional<Frame>> next = decoder.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
      Result<Response> response = DecodeResponse(**next);
      ASSERT_TRUE(response.ok());
      responses.push_back(std::move(response).value());
    }
  }
  EXPECT_TRUE(responses[0].ok);
  EXPECT_EQ(responses[0].text, "pong");
  EXPECT_TRUE(responses[1].ok);
  EXPECT_EQ(responses[1].text, "shutting down");
  CloseFd(*fd);

  server.Wait();  // must return because of the shutdown frame
  server.Stop();
}

TEST(ServeServerTest, MalformedBytesGetCleanErrorAndServerSurvives) {
  Structure served = MakePathStructure(6);
  Server server(&served, ServeOptions{});
  ASSERT_TRUE(server.Start().ok());

  {
    // A corrupted length prefix: one error response, then the connection
    // dies — and the server keeps serving other clients.
    Result<int> fd = ConnectLoopback(server.port());
    ASSERT_TRUE(fd.ok());
    std::string garbage;
    AppendU32(&garbage, 0xffffffffu);
    garbage += "junk";
    ASSERT_TRUE(SendAll(*fd, garbage).ok());
    FrameDecoder decoder;
    bool got_error = false;
    for (;;) {
      Result<std::string> chunk = RecvSome(*fd);
      if (!chunk.ok() || chunk->empty()) break;  // server closed on us
      decoder.Feed(*chunk);
      Result<std::optional<Frame>> next = decoder.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) continue;
      Result<Response> response = DecodeResponse(**next);
      ASSERT_TRUE(response.ok());
      EXPECT_FALSE(response->ok);
      EXPECT_NE(response->text.find("oversized"), std::string::npos);
      got_error = true;
      break;
    }
    EXPECT_TRUE(got_error);
    CloseFd(*fd);
  }

  // A well-formed client still gets served.
  std::vector<Observed> observed =
      RunClient(server.port(), {{FrameKind::kCount, "E(x, y)"}});
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_TRUE(observed[0].ok);
  EXPECT_EQ(observed[0].text, "5");
  server.Stop();

  // A corrupt length prefix is a *framing* error (the stream is lost);
  // the recoverable body class must stay untouched.
  const auto counters = server.metrics().Snapshot().counters;
  ASSERT_NE(counters.find("serve.protocol_errors"), counters.end());
  EXPECT_GE(counters.at("serve.protocol_errors"), 1);
  EXPECT_GE(counters.at("serve.protocol_errors.framing"), 1);
  EXPECT_EQ(counters.count("serve.protocol_errors.body"), 0u);
}

TEST(ServeServerTest, MalformedBodyKeepsConnectionUsable) {
  Structure served = MakePathStructure(6);
  Server server(&served, ServeOptions{});
  ASSERT_TRUE(server.Start().ok());

  Result<int> fd = ConnectLoopback(server.port());
  ASSERT_TRUE(fd.ok());
  // Frame 1: valid framing, body too short for a request header. Frame 2:
  // a real statement — the stream stayed in sync, so it must be answered.
  std::string wire;
  AppendU32(&wire, 2);
  wire.push_back(static_cast<char>(FrameKind::kCheck));
  wire.push_back('\x01');
  AppendRequestFrame(&wire, {FrameKind::kCount, 5, 0, 0, "E(x, y)"});
  ASSERT_TRUE(SendAll(*fd, wire).ok());

  FrameDecoder decoder;
  std::vector<Response> responses;
  while (responses.size() < 2) {
    Result<std::string> chunk = RecvSome(*fd);
    ASSERT_TRUE(chunk.ok());
    ASSERT_FALSE(chunk->empty());
    decoder.Feed(*chunk);
    for (;;) {
      Result<std::optional<Frame>> next = decoder.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
      Result<Response> response = DecodeResponse(**next);
      ASSERT_TRUE(response.ok());
      responses.push_back(std::move(response).value());
    }
  }
  EXPECT_FALSE(responses[0].ok);  // the diagnostic, id 0
  EXPECT_EQ(responses[0].id, 0u);
  EXPECT_TRUE(responses[1].ok);
  EXPECT_EQ(responses[1].id, 5u);
  EXPECT_EQ(responses[1].text, "5");
  CloseFd(*fd);
  server.Stop();

  // A well-framed frame with a bad body is the recoverable *body* class —
  // the sticky framing counter must stay at zero.
  const auto counters = server.metrics().Snapshot().counters;
  ASSERT_NE(counters.find("serve.protocol_errors"), counters.end());
  EXPECT_EQ(counters.at("serve.protocol_errors"), 1);
  EXPECT_EQ(counters.at("serve.protocol_errors.body"), 1);
  EXPECT_EQ(counters.count("serve.protocol_errors.framing"), 0u);
}

TEST(ServeServerTest, MetricsEndpointServesOpenMetrics) {
  Structure served = MakePathStructure(6);
  ServeOptions options;
  options.metrics_port = 0;  // ephemeral
  Server server(&served, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GE(server.metrics_port(), 0);

  // Generate some traffic first so serve.* counters exist.
  std::vector<Observed> observed = RunClient(
      server.port(), {{FrameKind::kCount, "E(x, y)"},
                      {FrameKind::kUpdate, "insert E 0 3"}});
  ASSERT_EQ(observed.size(), 2u);

  Result<int> fd =
      ConnectLoopback(static_cast<std::uint16_t>(server.metrics_port()));
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(SendAll(*fd, "GET /metrics HTTP/1.0\r\n\r\n").ok());
  std::string reply;
  for (;;) {
    Result<std::string> chunk = RecvSome(*fd);
    ASSERT_TRUE(chunk.ok());
    if (chunk->empty()) break;
    reply += *chunk;
  }
  CloseFd(*fd);

  EXPECT_NE(reply.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(reply.find("application/openmetrics-text"), std::string::npos);
  EXPECT_NE(reply.find("focq_serve_requests_total"), std::string::npos);
  EXPECT_NE(reply.find("focq_serve_requests_count_total"), std::string::npos);
  EXPECT_NE(reply.find("focq_serve_requests_update_total"),
            std::string::npos);
  // Per-kind latency families plus the queue/gate wait distributions.
  EXPECT_NE(reply.find("focq_dist_serve_request_ns_count"), std::string::npos);
  EXPECT_NE(reply.find("focq_dist_serve_request_ns_update"),
            std::string::npos);
  EXPECT_NE(reply.find("focq_dist_serve_queue_wait_ns"), std::string::npos);
  EXPECT_NE(reply.find("focq_dist_serve_gate_wait_ns"), std::string::npos);
  // Live gauges sampled at scrape time.
  EXPECT_NE(reply.find("# TYPE focq_serve_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(reply.find("# TYPE focq_serve_inflight gauge"), std::string::npos);
  EXPECT_NE(reply.find("# TYPE focq_serve_connections_live gauge"),
            std::string::npos);
  // The exposition itself must be well-formed: '# EOF' terminated.
  const std::string eof = "# EOF\n";
  ASSERT_GE(reply.size(), eof.size());
  EXPECT_EQ(reply.substr(reply.size() - eof.size()), eof);
  server.Stop();
}

TEST(ServeServerTest, ExplainFlagAppendsAttributionReport) {
  Structure served = MakePathStructure(8);
  Server server(&served, ServeOptions{});
  ASSERT_TRUE(server.Start().ok());

  Result<int> fd = ConnectLoopback(server.port());
  ASSERT_TRUE(fd.ok());
  Request request;
  request.kind = FrameKind::kCount;
  request.id = 1;
  request.flags = kRequestFlagExplain;
  request.text = "@ge1(#(y). (E(x, y)))";
  ASSERT_TRUE(SendAll(*fd, EncodeRequest(request)).ok());

  FrameDecoder decoder;
  std::optional<Response> response;
  while (!response.has_value()) {
    Result<std::string> chunk = RecvSome(*fd);
    ASSERT_TRUE(chunk.ok());
    ASSERT_FALSE(chunk->empty());
    decoder.Feed(*chunk);
    Result<std::optional<Frame>> next = decoder.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) continue;
    Result<Response> decoded = DecodeResponse(**next);
    ASSERT_TRUE(decoded.ok());
    response = std::move(decoded).value();
  }
  CloseFd(*fd);

  ASSERT_TRUE(response->ok) << response->text;
  // First line is the plain result, the rest the EXPLAIN ANALYZE tree.
  const std::size_t newline = response->text.find('\n');
  ASSERT_NE(newline, std::string::npos) << response->text;
  EXPECT_EQ(response->text.substr(0, newline), "7");
  EXPECT_NE(response->text.find("plan:"), std::string::npos)
      << response->text;
  EXPECT_NE(response->text.find("cl-term"), std::string::npos)
      << response->text;
  server.Stop();
}

// Query-log end-to-end: every served statement lands in the JSONL log with a
// digest that a serial replay (in-process Session here, the focq_logreplay
// binary below) reproduces bit for bit.
class ServeQueryLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("focq_serve_qlog_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
};

TEST_F(ServeQueryLogTest, LogsEveryStatementAndLogreplayVerifiesDigests) {
  const std::vector<std::vector<Statement>> workloads = {
      {
          {FrameKind::kCheck, "exists x. @ge1(#(y). (E(x, y)) - 1)"},
          {FrameKind::kUpdate, "insert E 0 7"},
          {FrameKind::kCount, "@ge1(#(y). (E(x, y)))"},
          {FrameKind::kUpdate, "delete E 0 7"},
      },
      {
          {FrameKind::kTerm, "#(x, y). (E(x, y))"},
          {FrameKind::kUpdate, "insert E 2 9"},
          {FrameKind::kCheck, "exists x. E(x, x)"},
      },
      {
          {FrameKind::kCount, "E(x, y)"},
          {FrameKind::kUpdate, "insert E 0 99"},  // out of bounds: error
          {FrameKind::kCheck, "(((broken"},       // parse error
          {FrameKind::kCount, "E(x, y)"},
      },
  };
  const std::string log_path = (dir_ / "query.log").string();

  Structure served = MakePathStructure(10);
  ServeOptions options;
  options.eval.num_threads = 4;
  options.query_log_path = log_path;
  Server server(&served, options);
  ASSERT_TRUE(server.Start().ok());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    clients.emplace_back([&, i] { RunClient(server.port(), workloads[i]); });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();  // drains + closes the query log

  std::vector<QueryLogRecord> records;
  {
    std::ifstream in(log_path);
    std::string line;
    while (std::getline(in, line)) {
      Result<QueryLogRecord> parsed = ParseQueryLogLine(line);
      ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
      records.push_back(*std::move(parsed));
    }
  }
  std::size_t total = 0;
  for (const auto& w : workloads) total += w.size();
  ASSERT_EQ(records.size(), total);

  // Admission seqs are strictly increasing once sorted; server-assigned
  // trace ids are non-zero and distinct.
  std::sort(records.begin(), records.end(),
            [](const QueryLogRecord& a, const QueryLogRecord& b) {
              return a.seq < b.seq;
            });
  std::set<std::uint64_t> trace_ids;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i > 0) ASSERT_GT(records[i].seq, records[i - 1].seq);
    EXPECT_NE(records[i].trace_id, 0u);
    trace_ids.insert(records[i].trace_id);
    EXPECT_GT(records[i].total_ns, 0);
    EXPECT_GE(records[i].total_ns, records[i].exec_ns);
  }
  EXPECT_EQ(trace_ids.size(), total);

  // In-process serial replay in seq order reproduces every digest — errors
  // included (their digest is over Status::ToString()).
  Structure replayed = MakePathStructure(10);
  EvalOptions replay_options;
  replay_options.num_threads = 4;
  Session session(&replayed, replay_options);
  for (const QueryLogRecord& r : records) {
    std::optional<FrameKind> kind = StatementKindFromWord(r.kind);
    ASSERT_TRUE(kind.has_value()) << r.kind;
    const std::string expected = EvalSerial(&session, {*kind, r.text});
    EXPECT_EQ(r.digest, Fnv1a64(expected))
        << "seq " << r.seq << " " << r.kind << " '" << r.text << "'";
  }

  // The focq_logreplay binary reaches the same verdict: zero mismatches.
  const std::string structure_path = (dir_ / "structure.focq").string();
  {
    std::ofstream out(structure_path);
    out << WriteStructure(MakePathStructure(10));
  }
  const std::string command = std::string(FOCQ_LOGREPLAY_PATH) + " " +
                              structure_path + " " + log_path +
                              " --threads 4 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char buffer[512];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) output += buffer;
  const int rc = pclose(pipe);
  ASSERT_TRUE(WIFEXITED(rc)) << output;
  EXPECT_EQ(WEXITSTATUS(rc), 0) << output;
  EXPECT_NE(output.find("0 mismatches"), std::string::npos) << output;
  EXPECT_NE(output.find("replayed " + std::to_string(total)),
            std::string::npos)
      << output;
}

TEST_F(ServeQueryLogTest, SlowMsLogsOnlySlowRequestsToTheFile) {
  // A generous threshold filters everything on this tiny structure; the
  // writer accounting still shows the requests passed through the sink.
  const std::string log_path = (dir_ / "query.log").string();
  Structure served = MakePathStructure(6);
  ServeOptions options;
  options.query_log_path = log_path;
  options.slow_ms = 60'000;  // one minute: nothing here is that slow
  Server server(&served, options);
  ASSERT_TRUE(server.Start().ok());
  std::vector<Observed> observed =
      RunClient(server.port(), {{FrameKind::kCount, "E(x, y)"},
                                {FrameKind::kCheck, "exists x. E(x, x)"}});
  ASSERT_EQ(observed.size(), 2u);
  server.Stop();

  std::ifstream in(log_path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 0u);
  const auto counters = server.metrics().Snapshot().counters;
  ASSERT_NE(counters.find("serve.querylog.filtered"), counters.end());
  EXPECT_EQ(counters.at("serve.querylog.filtered"), 2);
  EXPECT_EQ(counters.at("serve.querylog.written"), 0);
}

TEST(ServeServerTest, TraceSinkCollectsLifecycleLaneSpans) {
  Structure served = MakePathStructure(8);
  TraceSink trace;
  ServeOptions options;
  options.eval.num_threads = 2;
  options.trace = &trace;
  Server server(&served, options);
  ASSERT_TRUE(server.Start().ok());
  std::vector<Observed> observed =
      RunClient(server.port(), {{FrameKind::kCount, "E(x, y)"},
                                {FrameKind::kUpdate, "insert E 0 3"},
                                {FrameKind::kCheck, "exists x. E(x, x)"}});
  ASSERT_EQ(observed.size(), 3u);
  server.Stop();

  // Every request contributes one span per lifecycle stage, named
  // "<stage>#<trace id>" so the stages of one request stitch together.
  const std::vector<WorkerSlice> spans = trace.LaneSpans();
  auto stage_suffixes = [&](const std::string& stage) {
    std::set<std::string> suffixes;
    for (const WorkerSlice& s : spans) {
      if (s.span_name.rfind(stage + "#", 0) == 0) {
        suffixes.insert(s.span_name.substr(stage.size() + 1));
      }
    }
    return suffixes;
  };
  const std::set<std::string> decode_ids = stage_suffixes("decode");
  EXPECT_EQ(decode_ids.size(), 3u);
  EXPECT_EQ(stage_suffixes("queue"), decode_ids);
  EXPECT_EQ(stage_suffixes("gate"), decode_ids);
  EXPECT_EQ(stage_suffixes("exec"), decode_ids);
  EXPECT_EQ(stage_suffixes("write"), decode_ids);

  // Stage-to-lane assignment: decode on the reader lane, queue/gate waits on
  // the dispatcher lane; both are negative so they can never collide with a
  // pool-worker lane (>= 0).
  for (const WorkerSlice& s : spans) {
    if (s.span_name.rfind("decode#", 0) == 0) EXPECT_LE(s.tid, -2);
    if (s.span_name.rfind("queue#", 0) == 0) EXPECT_EQ(s.tid, -1);
    if (s.span_name.rfind("gate#", 0) == 0) EXPECT_EQ(s.tid, -1);
    EXPECT_GE(s.duration_ns, 0);
  }

  const std::string chrome = trace.ToChromeTracing();
  EXPECT_NE(chrome.find("\"dispatcher\""), std::string::npos);
  EXPECT_NE(chrome.find("reader-"), std::string::npos);
}

TEST(ServeServerTest, FlightRecorderSeesConnectionAndDrainEvents) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Enable();
  recorder.Clear();

  Structure served = MakePathStructure(6);
  Server server(&served, ServeOptions{});
  ASSERT_TRUE(server.Start().ok());
  std::vector<Observed> observed =
      RunClient(server.port(), {{FrameKind::kCount, "E(x, y)"},
                                {FrameKind::kUpdate, "insert E 0 3"}});
  ASSERT_EQ(observed.size(), 2u);
  server.Stop();

  std::size_t opens = 0, closes = 0, drain_begin = 0, drain_end = 0;
  for (const FlightEvent& e : recorder.Snapshot()) {
    const std::string_view name(e.name);
    if (name == "serve.conn.open") ++opens;
    if (name == "serve.conn.close") ++closes;
    if (name == "serve.update.drain.begin") ++drain_begin;
    if (name == "serve.update.drain.end") ++drain_end;
  }
  recorder.Disable();
  EXPECT_GE(opens, 1u);
  EXPECT_GE(closes, 1u);
  EXPECT_EQ(drain_begin, 1u);  // one update: one exclusive-gate drain
  EXPECT_EQ(drain_end, 1u);
}

TEST(ServeServerTest, StopWithoutTrafficIsClean) {
  Structure served = MakePathStructure(4);
  Server server(&served, ServeOptions{});
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
  server.Stop();  // idempotent
}

}  // namespace
}  // namespace serve
}  // namespace focq
