#include <gtest/gtest.h>

#include "focq/core/api.h"
#include "focq/graph/generators.h"
#include "focq/logic/build.h"
#include "focq/logic/parser.h"
#include "focq/logic/printer.h"
#include "focq/structure/encode.h"
#include "test_util.h"

namespace focq {
namespace {

EvalOptions Naive() { return EvalOptions{Engine::kNaive, TermEngine::kBall}; }
EvalOptions LocalBall() {
  return EvalOptions{Engine::kLocal, TermEngine::kBall};
}
EvalOptions LocalCover() {
  return EvalOptions{Engine::kLocal, TermEngine::kSparseCover};
}

TEST(Plan, CompilesDegreeQuery) {
  // "x has at least 2 neighbours": ge1(#(y).E(x,y) - 1).
  Var x = VarNamed("pcx"), y = VarNamed("pcy");
  Formula f = Ge1(Sub(Count({y}, Atom("E", {x, y})), Int(1)));
  Signature sig({{"E", 2}});
  Result<EvalPlan> plan = CompileFormula(f, sig);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->layers.size(), 1u);
  ASSERT_EQ(plan->layers[0].size(), 1u);
  EXPECT_FALSE(plan->layers[0][0].fallback);
  EXPECT_EQ(plan->layers[0][0].arity, 1);
  // Residual: just the marker atom.
  EXPECT_EQ(plan->final_formula.kind(), ExprKind::kAtom);
  EvalPlan::Stats stats = plan->ComputeStats();
  EXPECT_EQ(stats.num_layers, 1u);
  EXPECT_EQ(stats.num_fallback_relations, 0u);
  EXPECT_GE(stats.num_basic_cl_terms, 1u);
}

TEST(Plan, NestedPredicatesMakeTwoLayers) {
  // ge1(#(y).( E(x,y) and ge1(#(z). E(y,z)) )): inner predicate forms layer
  // 1, outer layer 2.
  Var x = VarNamed("nlx"), y = VarNamed("nly"), z = VarNamed("nlz");
  Formula inner = Ge1(Count({z}, Atom("E", {y, z})));
  Formula f = Ge1(Count({y}, And(Atom("E", {x, y}), inner)));
  Result<EvalPlan> plan = CompileFormula(f, Signature({{"E", 2}}));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->layers.size(), 2u);
}

TEST(Plan, UnguardedCountFallsBack) {
  // #(y).exists z E(y,z) -- the kernel's quantifier is unguarded, so the
  // layer is a (correct) fallback.
  Var x = VarNamed("ufx"), y = VarNamed("ufy"), z = VarNamed("ufz");
  Formula f = Ge1(Count({y}, And(Atom("E", {x, y}), Exists(z, Atom("E", {y, z})))));
  Result<EvalPlan> plan = CompileFormula(f, Signature({{"E", 2}}));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->layers.size(), 1u);
  EXPECT_TRUE(plan->layers[0][0].fallback);
}

TEST(Plan, ComputeStatsCountsFallbackRelations) {
  // The unguarded plan above, through the Stats lens: one relation, all of
  // it fallback, and no basic cl-terms (fallback defs carry no args).
  Var x = VarNamed("fsx"), y = VarNamed("fsy"), z = VarNamed("fsz");
  Formula f =
      Ge1(Count({y}, And(Atom("E", {x, y}), Exists(z, Atom("E", {y, z})))));
  Result<EvalPlan> plan = CompileFormula(f, Signature({{"E", 2}}));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EvalPlan::Stats stats = plan->ComputeStats();
  EXPECT_EQ(stats.num_layers, 1u);
  EXPECT_EQ(stats.num_relations, 1u);
  EXPECT_EQ(stats.num_fallback_relations, 1u);
  EXPECT_EQ(stats.num_basic_cl_terms, 0u);
  EXPECT_EQ(stats.max_width, 0);
  EXPECT_EQ(stats.max_radius, 0u);
}

TEST(Plan, ComputeStatsOnTermShapedPlan) {
  // A ground width-2 count compiles to a term-shaped plan (no layers); its
  // decomposed final cl-term must still show up in the statistics.
  Var x = VarNamed("tsx"), y = VarNamed("tsy");
  Term t = Count({x, y}, And(Atom("E", {x, y}), Atom("E", {y, x})));
  Result<EvalPlan> plan = CompileTerm(t, Signature({{"E", 2}}));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(plan->is_term);
  ASSERT_TRUE(plan->final_term_decomposed);
  EvalPlan::Stats stats = plan->ComputeStats();
  EXPECT_EQ(stats.num_layers, 0u);
  EXPECT_EQ(stats.num_relations, 0u);
  EXPECT_GE(stats.num_basic_cl_terms, 1u);
  EXPECT_EQ(stats.max_width, 2);
}

// The grand differential test: local engine vs naive engine on random FOC1
// sentences over random sparse structures.
TEST(CoreApi, ModelCheckAgreesWithNaive) {
  Rng rng(2000);
  Var x = VarNamed("mcx"), y = VarNamed("mcy");
  int fast_paths = 0;
  for (int round = 0; round < 25; ++round) {
    Structure a = test::RandomColoredStructure(16, 1.3, 0.4, &rng);
    // Random FOC1 sentence: ge1 over a unary count with a guarded kernel,
    // wrapped in a guarded sentence-level quantifier shape.
    Formula kernel = test::RandomGuardedKernel({x, y}, 2, true, 1, &rng, 1);
    Term count = Count({y}, kernel);
    Formula numeric =
        rng.NextBool(0.5)
            ? Ge1(count)
            : TermEq(count, Int(static_cast<CountInt>(rng.NextBelow(3))));
    Formula sentence = Exists(x, numeric);
    Result<bool> naive = ModelCheck(sentence, a, Naive());
    Result<bool> local = ModelCheck(sentence, a, LocalBall());
    Result<bool> cover = ModelCheck(sentence, a, LocalCover());
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    ASSERT_TRUE(cover.ok()) << cover.status().ToString();
    EXPECT_EQ(*naive, *local) << ToString(sentence);
    EXPECT_EQ(*naive, *cover) << ToString(sentence);
    ++fast_paths;
  }
  EXPECT_GT(fast_paths, 0);
}

TEST(CoreApi, CountSolutionsAgreesWithNaive) {
  Rng rng(2100);
  Var x = VarNamed("csx"), y = VarNamed("csy");
  for (int round = 0; round < 20; ++round) {
    Structure a = test::RandomColoredStructure(14, 1.4, 0.4, &rng);
    Formula kernel = test::RandomGuardedKernel({x, y}, 2, true, 1, &rng, 1);
    // phi(x) := ge1-style condition on x's local count.
    Formula phi = Ge1(Count({y}, kernel));
    Result<CountInt> naive = CountSolutions(phi, a, Naive());
    Result<CountInt> local = CountSolutions(phi, a, LocalBall());
    Result<CountInt> cover = CountSolutions(phi, a, LocalCover());
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    ASSERT_TRUE(cover.ok());
    EXPECT_EQ(*naive, *local) << ToString(phi);
    EXPECT_EQ(*naive, *cover) << ToString(phi);
  }
}

TEST(CoreApi, GroundTermsAgreeWithNaive) {
  Rng rng(2200);
  Var x = VarNamed("gtx"), y = VarNamed("gty");
  for (int round = 0; round < 20; ++round) {
    Structure a = test::RandomColoredStructure(14, 1.4, 0.4, &rng);
    Formula kernel = test::RandomGuardedKernel({x, y}, 2, true, 1, &rng, 1);
    Term t = Add(Mul(Count({x, y}, kernel), Int(3)),
                 Count({x}, Atom("R", {x})));
    Result<CountInt> naive = EvaluateGroundTerm(t, a, Naive());
    Result<CountInt> local = EvaluateGroundTerm(t, a, LocalBall());
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    EXPECT_EQ(*naive, *local) << ToString(t);
  }
}

TEST(CoreApi, PrimeSumSentenceBothEngines) {
  // Example 3.2's first sentence on a path: n + 2(n-1) edges-tuples.
  Var x = VarNamed("psx"), y = VarNamed("psy");
  Formula f = Pred(PredPrime(), {Add(Count({x}, Eq(x, x)),
                                     Count({x, y}, Atom("E", {x, y})))});
  // Path with 5 vertices: 5 + 8 = 13, prime.
  Structure a = EncodeGraph(MakePath(5));
  EXPECT_TRUE(*ModelCheck(f, a, Naive()));
  EXPECT_TRUE(*ModelCheck(f, a, LocalBall()));
  // Path with 4 vertices: 4 + 6 = 10, not prime.
  Structure b = EncodeGraph(MakePath(4));
  EXPECT_FALSE(*ModelCheck(f, b, Naive()));
  EXPECT_FALSE(*ModelCheck(f, b, LocalBall()));
}

TEST(CoreApi, DeeplyNestedFoc1) {
  // Nodes whose number of neighbours with prime degree equals 1.
  Var x = VarNamed("dnx"), y = VarNamed("dny"), z = VarNamed("dnz");
  Formula prime_degree = Pred(PredPrime(), {Count({z}, Atom("E", {y, z}))});
  Formula phi =
      TermEq(Count({y}, And(Atom("E", {x, y}), prime_degree)), Int(1));
  Rng rng(2300);
  for (int round = 0; round < 10; ++round) {
    Structure a = test::RandomGraphStructure(15, 1.5, &rng);
    Result<CountInt> naive = CountSolutions(phi, a, Naive());
    Result<CountInt> local = CountSolutions(phi, a, LocalBall());
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    EXPECT_EQ(*naive, *local);
  }
}

TEST(CoreApi, RejectsNonSentences) {
  Var x = VarNamed("rjx");
  Structure a = EncodeGraph(MakePath(3));
  EXPECT_FALSE(ModelCheck(Atom("E", {x, x}), a).ok());
  EXPECT_FALSE(EvaluateGroundTerm(Count({}, Atom("E", {x, x})), a).ok());
}

TEST(CoreApi, ParsedQueriesWork) {
  Structure a = EncodeGraph(MakeCycle(6));
  Result<Formula> f = ParseFormula(
      "exists x. @eq(#(y). (E(x, y)), 2)");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(*ModelCheck(*f, a, LocalBall()));
  Result<Formula> g = ParseFormula("exists x. @eq(#(y). (E(x, y)), 3)");
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(*ModelCheck(*g, a, LocalBall()));
}

}  // namespace
}  // namespace focq
