// Live-observability suite: progress sink semantics, the deadline watchdog,
// cooperative cancellation end to end, the flight recorder ring, and the
// OpenMetrics text exporter.
//
// The determinism contract under test (DESIGN.md §3b): installing a
// ProgressSink never changes results when no deadline fires — bit-identical
// for every num_threads; a hard deadline yields a clean kDeadlineExceeded
// Status carrying the progress snapshot, never caches a partially built
// artifact, and a warm re-run after cancellation is bit-identical to a cold
// run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "focq/core/api.h"
#include "focq/core/context.h"
#include "focq/graph/generators.h"
#include "focq/logic/build.h"
#include "focq/obs/metrics.h"
#include "focq/obs/openmetrics.h"
#include "focq/obs/progress.h"
#include "focq/obs/recorder.h"
#include "focq/structure/encode.h"
#include "focq/util/rng.h"
#include "test_util.h"

namespace focq {
namespace {

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// The width-2 FOC1 condition of bench_scaling: "x has at least two
// neighbours of degree exactly 2".
Formula ScalingCondition() {
  Var x = VarNamed("px"), y = VarNamed("py"), z = VarNamed("pz");
  Formula deg2 = TermEq(Count({z}, Atom("E", {y, z})), Int(2));
  return Ge1(Sub(Count({y}, And(Atom("E", {x, y}), deg2)), Int(1)));
}

// --- ProgressSink counters -------------------------------------------------

TEST(ProgressSinkTest, CountersAreMonotoneAndPerPhase) {
  ProgressSink sink;
  EXPECT_EQ(sink.Get(ProgressPhase::kCover).done, 0);
  EXPECT_EQ(sink.Get(ProgressPhase::kCover).total, 0);

  sink.AddTotal(ProgressPhase::kCover, 8);
  sink.Advance(ProgressPhase::kCover, 3);
  sink.Advance(ProgressPhase::kCover, 5);
  sink.AddTotal(ProgressPhase::kNaive, 100);
  sink.Advance(ProgressPhase::kNaive, 40);

  EXPECT_EQ(sink.Get(ProgressPhase::kCover).done, 8);
  EXPECT_EQ(sink.Get(ProgressPhase::kCover).total, 8);
  EXPECT_EQ(sink.Get(ProgressPhase::kNaive).done, 40);
  EXPECT_EQ(sink.Get(ProgressPhase::kNaive).total, 100);
  // Untouched phases stay idle.
  EXPECT_EQ(sink.Get(ProgressPhase::kHanf).done, 0);

  std::string text = sink.ToString();
  EXPECT_NE(text.find("cover 8/8"), std::string::npos) << text;
  EXPECT_NE(text.find("naive 40/100"), std::string::npos) << text;

  sink.Reset();
  EXPECT_EQ(sink.Get(ProgressPhase::kCover).done, 0);
  EXPECT_EQ(sink.ToString(), "(idle)");
}

TEST(ProgressSinkTest, ToJsonCarriesElapsedAndCancelledFields) {
  ProgressSink sink;
  sink.AddTotal(ProgressPhase::kHanf, 2);
  sink.Advance(ProgressPhase::kHanf, 1);
  std::string json = sink.ToJson();
  EXPECT_NE(json.find("\"hanf\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"elapsed_ms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cancelled\": false"), std::string::npos) << json;
}

// --- Deadline watchdog (unit level) ----------------------------------------

TEST(DeadlineWatchdogTest, UnarmedSinkNeverStops) {
  ProgressSink sink;
  for (int i = 0; i < 256; ++i) EXPECT_FALSE(sink.ShouldStop());
  EXPECT_FALSE(sink.cancelled());
}

TEST(DeadlineWatchdogTest, HardExpiryLatchesUntilRearmed) {
  ProgressSink sink;
  sink.ArmDeadline({0, 1});
  SleepMs(5);
  // The clock read is gated to every 64th poll, so a bounded burst of polls
  // must observe the expiry.
  bool stopped = false;
  for (int i = 0; i < 256; ++i) stopped = sink.ShouldStop() || stopped;
  EXPECT_TRUE(stopped);
  EXPECT_TRUE(sink.cancelled());
  // Sticky until re-armed.
  EXPECT_TRUE(sink.ShouldStop());

  Status status = sink.DeadlineStatus();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("hard deadline"), std::string::npos)
      << status.ToString();

  sink.ArmDeadline({0, 0});
  EXPECT_FALSE(sink.cancelled());
  EXPECT_FALSE(sink.ShouldStop());
}

TEST(DeadlineWatchdogTest, SoftExpiryFiresCallbackOncePerArmAndContinues) {
  ProgressSink sink;
  std::atomic<int> fired{0};
  sink.SetSoftExpiryCallback([&fired] { fired.fetch_add(1); });

  sink.ArmDeadline({1, 0});
  SleepMs(5);
  for (int i = 0; i < 512; ++i) EXPECT_FALSE(sink.ShouldStop());
  EXPECT_EQ(fired.load(), 1);
  EXPECT_FALSE(sink.cancelled());

  // Re-arming resets the one-shot latch.
  sink.ArmDeadline({1, 0});
  SleepMs(5);
  for (int i = 0; i < 512; ++i) sink.ShouldStop();
  EXPECT_EQ(fired.load(), 2);
}

TEST(DeadlineWatchdogTest, ParallelPollsFireSoftCallbackExactlyOnce) {
  ProgressSink sink;
  std::atomic<int> fired{0};
  sink.SetSoftExpiryCallback([&fired] { fired.fetch_add(1); });
  sink.ArmDeadline({1, 0});
  SleepMs(5);

  std::vector<std::thread> pollers;
  for (int t = 0; t < 4; ++t) {
    pollers.emplace_back([&sink] {
      for (int i = 0; i < 4096; ++i) sink.ShouldStop();
    });
  }
  for (std::thread& t : pollers) t.join();
  EXPECT_EQ(fired.load(), 1);
}

// --- End-to-end: sink installed, no deadline => bit-identical --------------

TEST(CancellationTest, SinkWithoutDeadlineNeverChangesResults) {
  Rng rng(71);
  Structure a = EncodeGraph(MakeRandomBoundedDegree(400, 4, &rng));
  Formula phi = ScalingCondition();

  EvalOptions plain;
  plain.term_engine = TermEngine::kSparseCover;
  plain.num_threads = 1;
  Result<CountInt> expected = CountSolutions(phi, a, plain);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  std::array<PhaseProgress, kNumProgressPhases> reference{};
  bool have_reference = false;
  for (int threads : {0, 1, 4}) {
    ProgressSink sink;
    EvalOptions options = plain;
    options.num_threads = threads;
    options.progress = &sink;
    Result<CountInt> got = CountSolutions(phi, a, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, *expected) << "threads=" << threads;

    // Every pre-announced unit of work completed, and the completed-phase
    // counters are input-determined: identical for every thread count.
    std::array<PhaseProgress, kNumProgressPhases> snap = sink.Snapshot();
    for (int p = 0; p < kNumProgressPhases; ++p) {
      EXPECT_EQ(snap[p].done, snap[p].total)
          << "threads=" << threads << " phase="
          << ProgressPhaseName(static_cast<ProgressPhase>(p));
    }
    if (!have_reference) {
      reference = snap;
      have_reference = true;
    } else {
      for (int p = 0; p < kNumProgressPhases; ++p) {
        EXPECT_EQ(snap[p].done, reference[p].done)
            << "threads=" << threads << " phase="
            << ProgressPhaseName(static_cast<ProgressPhase>(p));
      }
    }
  }
}

// --- End-to-end: hard deadline cancels cleanly -----------------------------

TEST(CancellationTest, NaiveEngineHardDeadlineReturnsCleanStatus) {
  // ~8M naive tuples: far past a 1ms budget on any machine, so the odometer
  // is guaranteed to observe the expiry and drain.
  Rng rng(72);
  Structure a = EncodeGraph(MakeRandomBoundedDegree(200, 4, &rng));
  Var x = VarNamed("cx"), y = VarNamed("cy"), z = VarNamed("cz");
  Term paths = Count({x, y, z}, And(Atom("E", {x, y}), Atom("E", {y, z})));

  for (int threads : {0, 1, 4}) {
    ProgressSink sink;
    EvalOptions options;
    options.engine = Engine::kNaive;
    options.num_threads = threads;
    options.progress = &sink;
    options.deadline = Deadline{0, 1};
    Result<CountInt> got = EvaluateGroundTerm(paths, a, options);
    ASSERT_FALSE(got.ok()) << "threads=" << threads;
    EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded)
        << got.status().ToString();
    // The Status embeds the progress snapshot.
    EXPECT_NE(got.status().message().find("progress"), std::string::npos)
        << got.status().ToString();
    EXPECT_TRUE(sink.cancelled());
  }
}

TEST(CancellationTest, LocalEngineHardDeadlineReturnsCleanStatus) {
  // A 100x100 grid: cover construction alone is far past a 1ms budget.
  Structure a = EncodeGraph(MakeGrid(100, 100));
  Formula phi = ScalingCondition();

  for (int threads : {0, 1, 4}) {
    EvalOptions options;
    options.term_engine = TermEngine::kSparseCover;
    options.num_threads = threads;
    options.deadline = Deadline{0, 1};  // private call-local sink
    Result<CountInt> got = CountSolutions(phi, a, options);
    ASSERT_FALSE(got.ok()) << "threads=" << threads;
    EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded)
        << got.status().ToString();
  }
}

// --- End-to-end: no partial cache writes; warm-after-cancel == cold --------

TEST(CancellationTest, WarmRunAfterCancellationMatchesColdRun) {
  Structure a = EncodeGraph(MakeGrid(100, 100));
  Formula phi = ScalingCondition();

  EvalOptions plain;
  plain.term_engine = TermEngine::kSparseCover;
  plain.num_threads = 1;
  Result<CountInt> cold = CountSolutions(phi, a, plain);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  for (int threads : {0, 1, 4}) {
    EvalContext context(a);
    EvalOptions cancel = plain;
    cancel.num_threads = threads;
    cancel.context = &context;
    cancel.deadline = Deadline{0, 1};
    Result<CountInt> cancelled = CountSolutions(phi, a, cancel);
    ASSERT_FALSE(cancelled.ok()) << "threads=" << threads;
    ASSERT_EQ(cancelled.status().code(), StatusCode::kDeadlineExceeded)
        << cancelled.status().ToString();

    // Same context, no deadline: whatever the cancelled call left behind in
    // the cache must be complete artifacts or nothing — the warm re-run is
    // bit-identical to the cold uncached run.
    EvalOptions warm = plain;
    warm.num_threads = threads;
    warm.context = &context;
    Result<CountInt> rerun = CountSolutions(phi, a, warm);
    ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
    EXPECT_EQ(*rerun, *cold) << "threads=" << threads;
  }
}

TEST(CancellationTest, SessionRearmsDeadlinePerStatement) {
  // A session whose defaults carry a generous deadline: every statement gets
  // the full budget, so none of them trips it and results are unchanged.
  Rng rng(73);
  Structure a = EncodeGraph(MakeRandomBoundedDegree(200, 4, &rng));
  Formula phi = ScalingCondition();

  EvalOptions defaults;
  defaults.term_engine = TermEngine::kSparseCover;
  Result<CountInt> expected = CountSolutions(phi, a, defaults);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  ProgressSink sink;
  defaults.progress = &sink;
  defaults.deadline = Deadline{0, 60000};
  Session session(a, defaults);
  for (int i = 0; i < 3; ++i) {
    Result<CountInt> got = session.CountSolutions(phi);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, *expected) << "statement " << i;
    EXPECT_FALSE(sink.cancelled());
  }
}

// --- FlightRecorder --------------------------------------------------------

TEST(FlightRecorderTest, DisabledRecorderDropsEverything) {
  FlightRecorder recorder;
  EXPECT_FALSE(recorder.enabled());
  recorder.Record(FlightEventKind::kMark, "nope", 1, 2);
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(FlightRecorderTest, RingKeepsTheLastCapacityEvents) {
  FlightRecorder recorder;
  recorder.Enable(8);
  EXPECT_EQ(recorder.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    recorder.Record(FlightEventKind::kMark, "tick", i, 0);
  }
  EXPECT_EQ(recorder.total_recorded(), 20u);

  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest surviving event first, claim order preserved.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  EXPECT_EQ(events.back().a, 19);

  std::string dump = recorder.Dump();
  EXPECT_NE(dump.find("flight recorder"), std::string::npos) << dump;
  EXPECT_NE(dump.find("MARK"), std::string::npos) << dump;
  EXPECT_NE(dump.find("tick"), std::string::npos) << dump;

  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_TRUE(recorder.enabled());
}

TEST(FlightRecorderTest, ParallelRecordersClaimDistinctSequenceNumbers) {
  FlightRecorder recorder;
  recorder.Enable(4096);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record(FlightEventKind::kProgress, "par", t, i);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(recorder.total_recorded(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  std::vector<FlightEvent> events = recorder.Snapshot();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

TEST(FlightRecorderTest, EvaluationFeedsTheGlobalRecorderWhenEnabled) {
  FlightRecorder& global = FlightRecorder::Global();
  global.Enable(4096);
  global.Clear();

  Rng rng(74);
  Structure a = EncodeGraph(MakeRandomBoundedDegree(300, 4, &rng));
  ProgressSink sink;
  EvalOptions options;
  options.term_engine = TermEngine::kSparseCover;
  options.num_threads = 4;
  options.progress = &sink;
  Result<CountInt> got = CountSolutions(ScalingCondition(), a, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  EXPECT_GT(global.total_recorded(), 0u);
  std::string dump = global.Dump();
  EXPECT_NE(dump.find("PHASE_ENTER"), std::string::npos) << dump;
  global.Disable();
}

// --- OpenMetrics exporter --------------------------------------------------

TEST(OpenMetricsTest, SanitizeNameMapsToTheFormatCharset) {
  EXPECT_EQ(OpenMetricsSeries::SanitizeName("cover.bfs_vertices"),
            "cover_bfs_vertices");
  EXPECT_EQ(OpenMetricsSeries::SanitizeName("Plan-Compilations"),
            "plan_compilations");
  EXPECT_EQ(OpenMetricsSeries::SanitizeName("9lives"), "_9lives");
}

TEST(OpenMetricsTest, RenderEmitsFamiliesPointsAndEof) {
  MetricsSink metrics;
  metrics.AddCounter("plan.compilations", 2);
  metrics.RecordValue("cluster.size", 3);
  metrics.RecordValue("cluster.size", 5);

  ProgressSink progress;
  progress.AddTotal(ProgressPhase::kCover, 10);
  progress.Advance(ProgressPhase::kCover, 10);

  OpenMetricsSeries series;
  series.Sample(1000, metrics.Snapshot(), &progress);
  metrics.AddCounter("plan.compilations", 1);
  series.Sample(2000, metrics.Snapshot(), &progress);
  EXPECT_EQ(series.sample_count(), 2u);

  std::string text = series.Render();
  // Counter family with both timestamped points, in sample order.
  EXPECT_NE(text.find("# TYPE focq_plan_compilations counter"),
            std::string::npos)
      << text;
  std::size_t p1 = text.find("focq_plan_compilations_total 2 1");
  std::size_t p2 = text.find("focq_plan_compilations_total 3 2");
  EXPECT_NE(p1, std::string::npos) << text;
  EXPECT_NE(p2, std::string::npos) << text;
  EXPECT_LT(p1, p2);
  // Progress gauges carry the phase label.
  EXPECT_NE(text.find("focq_progress_done{phase=\"cover\"} 10"),
            std::string::npos)
      << text;
  // Value distributions render as histograms with cumulative buckets.
  EXPECT_NE(text.find("# TYPE focq_dist_cluster_size histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("focq_dist_cluster_size_count 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("focq_dist_cluster_size_sum 8"), std::string::npos)
      << text;
  // '# EOF' is the terminator, with nothing after it.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetricsTest, SeriesIsBoundedByMaxSamples) {
  MetricsSink metrics;
  OpenMetricsSeries series(3);
  for (int i = 0; i < 10; ++i) {
    metrics.AddCounter("ticks", 1);
    series.Sample(1000 + i, metrics.Snapshot(), nullptr);
  }
  EXPECT_EQ(series.sample_count(), 3u);
  std::string text = series.Render();
  // Only the newest three snapshots survive.
  EXPECT_EQ(text.find("focq_ticks_total 7 1"), std::string::npos) << text;
  EXPECT_NE(text.find("focq_ticks_total 8 1"), std::string::npos) << text;
  EXPECT_NE(text.find("focq_ticks_total 10 1"), std::string::npos) << text;
}

TEST(OpenMetricsTest, EmptyButRegisteredHistogramRendersZeroedFamily) {
  // A histogram family that is registered but has no samples yet (a server
  // that declared serve.request_ns.update before any update arrived) must
  // still render as a complete, spec-valid family: zeroed buckets including
  // the mandatory +Inf, zero _sum and _count — so scrapers can set up alerts
  // before traffic exists.
  EvalMetrics metrics;
  metrics.values["empty.dist"];  // registered, count == 0
  OpenMetricsSeries series;
  series.Sample(1000, metrics, nullptr);
  std::string text = series.Render();
  EXPECT_NE(text.find("# TYPE focq_dist_empty_dist histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("focq_dist_empty_dist_bucket{le=\"+Inf\"} 0 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("focq_dist_empty_dist_sum 0 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("focq_dist_empty_dist_count 0 1"), std::string::npos)
      << text;
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetricsTest, GaugesRenderAsBareNameFamiliesPerSample) {
  MetricsSink metrics;
  metrics.AddCounter("serve.requests", 1);
  OpenMetricsSeries series;
  std::map<std::string, std::int64_t> gauges;
  gauges["serve.queue_depth"] = 7;
  gauges["serve.inflight"] = 2;
  series.Sample(1000, metrics.Snapshot(), nullptr, gauges);
  gauges["serve.queue_depth"] = 3;  // gauges may go down between samples
  series.Sample(2000, metrics.Snapshot(), nullptr, gauges);

  std::string text = series.Render();
  EXPECT_NE(text.find("# TYPE focq_serve_queue_depth gauge"),
            std::string::npos)
      << text;
  std::size_t p1 = text.find("focq_serve_queue_depth 7 1");
  std::size_t p2 = text.find("focq_serve_queue_depth 3 2");
  ASSERT_NE(p1, std::string::npos) << text;
  ASSERT_NE(p2, std::string::npos) << text;
  EXPECT_LT(p1, p2);
  EXPECT_NE(text.find("focq_serve_inflight 2 1"), std::string::npos) << text;
  // The counter family still renders with its _total suffix.
  EXPECT_NE(text.find("focq_serve_requests_total 1 1"), std::string::npos)
      << text;
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetricsTest, SessionSamplingAppendsOneSamplePerCall) {
  Rng rng(75);
  Structure a = EncodeGraph(MakeRandomBoundedDegree(100, 3, &rng));
  MetricsSink metrics;
  ProgressSink progress;
  EvalOptions defaults;
  defaults.metrics = &metrics;
  defaults.progress = &progress;

  Session session(a, defaults);
  OpenMetricsSeries series;
  session.EnableOpenMetricsSampling(&series, /*min_interval_ms=*/0);

  Formula phi = ScalingCondition();
  for (int i = 0; i < 3; ++i) {
    Result<CountInt> got = session.CountSolutions(phi);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
  }
  EXPECT_EQ(series.sample_count(), 3u);
  std::string text = series.Render();
  EXPECT_NE(text.find("focq_progress_done"), std::string::npos) << text;
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

}  // namespace
}  // namespace focq
