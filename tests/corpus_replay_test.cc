// Replays every .case file in tests/corpus/ through the differential driver:
// each is a regression the fast pipeline must keep agreeing on with the
// naive oracle under every cover backend and thread count. New shrunk
// failures from tools/focq_fuzz get dropped into the corpus directory and
// are picked up here without any registration.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "focq/testing/case_io.h"
#include "focq/testing/differential.h"

#ifndef FOCQ_CORPUS_DIR
#error "FOCQ_CORPUS_DIR must point at tests/corpus (set in CMakeLists.txt)"
#endif

namespace focq {
namespace {

// Non-recursive on purpose: the approx/ subdirectory is a separate suite
// replayed through the error-band driver below, not the exact one.
std::vector<std::string> CorpusFilesIn(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".case") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::vector<std::string> CorpusFiles() { return CorpusFilesIn(FOCQ_CORPUS_DIR); }

TEST(CorpusReplay, EveryCaseAgrees) {
  std::vector<std::string> paths = CorpusFiles();
  ASSERT_FALSE(paths.empty()) << "no .case files under " << FOCQ_CORPUS_DIR;
  fuzz::DiffConfig config;
  for (const std::string& path : paths) {
    SCOPED_TRACE(path);
    Result<fuzz::DiffCase> c = fuzz::ReadCaseFile(path);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    std::optional<fuzz::DiffFailure> failure = fuzz::RunCase(*c, config);
    EXPECT_FALSE(failure.has_value())
        << (failure ? failure->description : "");
  }
}

// Shrunk failures from `focq_fuzz --engine approx` land in corpus/approx/ and
// replay through the error-band driver: estimates within the admitted band of
// the naive oracle, booleans exact, bit-identical across thread counts and
// warm/cold contexts. Both the single-run band (tail 1e-12) and the
// repeated-trial delta-level gate are exercised per case.
TEST(CorpusReplay, ApproxCasesStayInsideTheErrorBand) {
  std::vector<std::string> paths =
      CorpusFilesIn(std::string(FOCQ_CORPUS_DIR) + "/approx");
  ASSERT_FALSE(paths.empty())
      << "no .case files under " << FOCQ_CORPUS_DIR << "/approx";
  fuzz::ApproxDiffConfig config;
  for (const std::string& path : paths) {
    SCOPED_TRACE(path);
    Result<fuzz::DiffCase> c = fuzz::ReadCaseFile(path);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    std::optional<fuzz::DiffFailure> failure = fuzz::RunApproxCase(*c, config);
    EXPECT_FALSE(failure.has_value())
        << (failure ? failure->description : "");
    failure = fuzz::RunApproxTrials(*c, config, 20);
    EXPECT_FALSE(failure.has_value())
        << (failure ? failure->description : "");
  }
}

TEST(CorpusReplay, CasesRoundTripThroughTheWriter) {
  std::vector<std::string> paths = CorpusFiles();
  std::vector<std::string> approx =
      CorpusFilesIn(std::string(FOCQ_CORPUS_DIR) + "/approx");
  paths.insert(paths.end(), approx.begin(), approx.end());
  for (const std::string& path : paths) {
    SCOPED_TRACE(path);
    Result<fuzz::DiffCase> c = fuzz::ReadCaseFile(path);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    Result<fuzz::DiffCase> again = fuzz::ReadCase(fuzz::WriteCase(*c));
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(fuzz::WriteCase(*again), fuzz::WriteCase(*c));
  }
}

}  // namespace
}  // namespace focq
