// Replays every .case file in tests/corpus/ through the differential driver:
// each is a regression the fast pipeline must keep agreeing on with the
// naive oracle under every cover backend and thread count. New shrunk
// failures from tools/focq_fuzz get dropped into the corpus directory and
// are picked up here without any registration.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "focq/testing/case_io.h"
#include "focq/testing/differential.h"

#ifndef FOCQ_CORPUS_DIR
#error "FOCQ_CORPUS_DIR must point at tests/corpus (set in CMakeLists.txt)"
#endif

namespace focq {
namespace {

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(FOCQ_CORPUS_DIR, ec)) {
    if (entry.path().extension() == ".case") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(CorpusReplay, EveryCaseAgrees) {
  std::vector<std::string> paths = CorpusFiles();
  ASSERT_FALSE(paths.empty()) << "no .case files under " << FOCQ_CORPUS_DIR;
  fuzz::DiffConfig config;
  for (const std::string& path : paths) {
    SCOPED_TRACE(path);
    Result<fuzz::DiffCase> c = fuzz::ReadCaseFile(path);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    std::optional<fuzz::DiffFailure> failure = fuzz::RunCase(*c, config);
    EXPECT_FALSE(failure.has_value())
        << (failure ? failure->description : "");
  }
}

TEST(CorpusReplay, CasesRoundTripThroughTheWriter) {
  for (const std::string& path : CorpusFiles()) {
    SCOPED_TRACE(path);
    Result<fuzz::DiffCase> c = fuzz::ReadCaseFile(path);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    Result<fuzz::DiffCase> again = fuzz::ReadCase(fuzz::WriteCase(*c));
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(fuzz::WriteCase(*again), fuzz::WriteCase(*c));
  }
}

}  // namespace
}  // namespace focq
