// Property test: printing any expression and re-parsing it yields a
// structurally identical AST, across randomly generated FOC(P) expressions
// (formulas with guards, distance atoms, numerical predicates and nested
// counting terms).
#include <gtest/gtest.h>

#include "focq/logic/build.h"
#include "focq/logic/parser.h"
#include "focq/logic/printer.h"
#include "focq/util/rng.h"

namespace focq {
namespace {

// Random FOC(P) generators (richer than test_util's guarded kernels: these
// also emit numerical predicates and nested counts).
Formula RandomFormula(const std::vector<Var>& vars, int depth, Rng* rng);

Term RandomTerm(const std::vector<Var>& vars, int depth, Rng* rng) {
  if (depth == 0 || rng->NextBool(0.3)) {
    return Int(rng->NextInRange(-20, 20));
  }
  switch (rng->NextBelow(4)) {
    case 0:
      return Add(RandomTerm(vars, depth - 1, rng),
                 RandomTerm(vars, depth - 1, rng));
    case 1:
      return Mul(RandomTerm(vars, depth - 1, rng),
                 RandomTerm(vars, depth - 1, rng));
    case 2:
      return Sub(RandomTerm(vars, depth - 1, rng),
                 RandomTerm(vars, depth - 1, rng));
    default: {
      Var fresh = FreshVar("rt");
      std::vector<Var> inner = vars;
      inner.push_back(fresh);
      return Count({fresh}, RandomFormula(inner, depth - 1, rng));
    }
  }
}

Formula RandomFormula(const std::vector<Var>& vars, int depth, Rng* rng) {
  if (depth == 0 || rng->NextBool(0.25)) {
    Var x = vars[rng->NextBelow(vars.size())];
    Var y = vars[rng->NextBelow(vars.size())];
    switch (rng->NextBelow(5)) {
      case 0: return Atom("E", {x, y});
      case 1: return Eq(x, y);
      case 2: return Atom("R", {x});
      case 3: return DistAtMost(x, y, static_cast<std::uint32_t>(
                                          rng->NextBelow(9)));
      default: return rng->NextBool(0.5) ? True() : False();
    }
  }
  switch (rng->NextBelow(6)) {
    case 0:
      return Not(RandomFormula(vars, depth - 1, rng));
    case 1:
      return Or(RandomFormula(vars, depth - 1, rng),
                RandomFormula(vars, depth - 1, rng));
    case 2:
      return And(RandomFormula(vars, depth - 1, rng),
                 RandomFormula(vars, depth - 1, rng));
    case 3: {
      Var fresh = FreshVar("rf");
      std::vector<Var> inner = vars;
      inner.push_back(fresh);
      return Exists(fresh, RandomFormula(inner, depth - 1, rng));
    }
    case 4: {
      Var fresh = FreshVar("rf");
      std::vector<Var> inner = vars;
      inner.push_back(fresh);
      return Forall(fresh, RandomFormula(inner, depth - 1, rng));
    }
    default:
      switch (rng->NextBelow(3)) {
        case 0:
          return Ge1(RandomTerm(vars, depth - 1, rng));
        case 1:
          return TermEq(RandomTerm(vars, depth - 1, rng),
                        RandomTerm(vars, depth - 1, rng));
        default:
          return Pred(PredPrime(), {RandomTerm(vars, depth - 1, rng)});
      }
  }
}

TEST(PrinterParserRoundTrip, RandomFormulas) {
  Rng rng(777);
  Var x = VarNamed("rr_x"), y = VarNamed("rr_y");
  for (int i = 0; i < 200; ++i) {
    Formula f = RandomFormula({x, y}, 1 + static_cast<int>(rng.NextBelow(4)),
                              &rng);
    std::string text = ToString(f);
    Result<Formula> reparsed = ParseFormula(text);
    ASSERT_TRUE(reparsed.ok()) << text << "\n" << reparsed.status().ToString();
    EXPECT_TRUE(ExprEquals(f.node(), reparsed->node())) << text;
  }
}

TEST(PrinterParserRoundTrip, RandomTerms) {
  Rng rng(778);
  Var x = VarNamed("rr_x"), y = VarNamed("rr_y");
  for (int i = 0; i < 200; ++i) {
    Term t = RandomTerm({x, y}, 1 + static_cast<int>(rng.NextBelow(4)), &rng);
    std::string text = ToString(t);
    Result<Term> reparsed = ParseTerm(text);
    ASSERT_TRUE(reparsed.ok()) << text << "\n" << reparsed.status().ToString();
    EXPECT_TRUE(ExprEquals(t.node(), reparsed->node())) << text;
  }
}

TEST(PrinterParserRoundTrip, SizeIsStable) {
  // Printing is deterministic: same AST, same text.
  Rng rng(779);
  Var x = VarNamed("rr_x");
  for (int i = 0; i < 50; ++i) {
    Formula f = RandomFormula({x}, 3, &rng);
    EXPECT_EQ(ToString(f), ToString(f));
  }
}

}  // namespace
}  // namespace focq
