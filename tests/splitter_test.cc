#include <gtest/gtest.h>

#include <algorithm>

#include "focq/graph/bfs.h"
#include "focq/graph/generators.h"
#include "focq/graph/splitter.h"

namespace focq {
namespace {

TEST(SplitterGame, SplitterWinsSingletonImmediately) {
  Graph g(1);
  g.Finalize();
  auto splitter = MakeTreeSplitter();
  auto connector = MakeGreedyConnector();
  SplitterGameResult res =
      PlaySplitterGame(g, 2, splitter.get(), connector.get(), 10);
  EXPECT_TRUE(res.splitter_won);
  EXPECT_EQ(res.rounds, 1u);
}

TEST(SplitterGame, TreeStrategyWinsFastOnTrees) {
  Rng rng(21);
  auto splitter = MakeTreeSplitter();
  for (std::uint32_t r : {1u, 2u, 4u}) {
    for (int i = 0; i < 3; ++i) {
      Graph t = MakeRandomTree(150, &rng);
      auto greedy = MakeGreedyConnector();
      SplitterGameResult res =
          PlaySplitterGame(t, r, splitter.get(), greedy.get(), 3 * r + 5);
      EXPECT_TRUE(res.splitter_won) << "r=" << r;
      EXPECT_LE(res.rounds, 2 * r + 3) << "r=" << r;
    }
  }
}

TEST(SplitterGame, BoundedOnPathsAndGrids) {
  auto splitter = MakeCenterSplitter();
  auto connector = MakeGreedyConnector();
  Graph path = MakePath(300);
  SplitterGameResult res =
      PlaySplitterGame(path, 2, splitter.get(), connector.get(), 30);
  EXPECT_TRUE(res.splitter_won);

  Graph grid = MakeGrid(15, 15);
  SplitterGameResult res2 =
      PlaySplitterGame(grid, 2, splitter.get(), connector.get(), 40);
  EXPECT_TRUE(res2.splitter_won);
}

TEST(SplitterGame, CliqueResistsAtLargeRadius) {
  // On K_n with radius >= 1, every ball is the whole clique; Splitter can
  // only remove one vertex per round, so the game needs ~n rounds -- the
  // somewhere-dense signature.
  Graph clique = MakeClique(30);
  auto splitter = MakeMaxDegreeSplitter();
  auto connector = MakeGreedyConnector();
  SplitterGameResult res =
      PlaySplitterGame(clique, 1, splitter.get(), connector.get(), 10);
  EXPECT_FALSE(res.splitter_won);
  SplitterGameResult res2 =
      PlaySplitterGame(clique, 1, splitter.get(), connector.get(), 30);
  EXPECT_TRUE(res2.splitter_won);
  EXPECT_EQ(res2.rounds, 30u);
}

TEST(SplitterGame, RandomConnectorIsDeterministicPerSeed) {
  Rng rng(22);
  Graph t = MakeRandomTree(80, &rng);
  auto splitter = MakeTreeSplitter();
  auto c1 = MakeRandomConnector(5);
  auto c2 = MakeRandomConnector(5);
  SplitterGameResult r1 = PlaySplitterGame(t, 2, splitter.get(), c1.get(), 20);
  SplitterGameResult r2 = PlaySplitterGame(t, 2, splitter.get(), c2.get(), 20);
  EXPECT_EQ(r1.rounds, r2.rounds);
  EXPECT_EQ(r1.splitter_won, r2.splitter_won);
}

TEST(SplitterStep, RemovesChosenVertexFromBall) {
  Rng rng(23);
  Graph t = MakeRandomTree(60, &rng);
  SplitterPosition pos = InitialPosition(t);
  auto splitter = MakeTreeSplitter();
  SplitterStep step = ApplySplitterStep(pos, 30, 2, splitter.get());
  // The surviving ball plus the removed vertex is exactly N_2(30).
  std::vector<VertexId> ball = Ball(t, {30}, 2);
  EXPECT_EQ(step.surviving_ball.size() + 1, ball.size());
  for (VertexId v : step.surviving_ball) {
    EXPECT_TRUE(std::binary_search(ball.begin(), ball.end(), v));
    EXPECT_NE(v, step.removed);
  }
  EXPECT_TRUE(std::binary_search(ball.begin(), ball.end(), step.removed));
}

}  // namespace
}  // namespace focq
