#include <gtest/gtest.h>

#include "focq/eval/naive_eval.h"
#include "focq/graph/generators.h"
#include "focq/hanf/hanf_eval.h"
#include "focq/hanf/sphere.h"
#include "focq/logic/build.h"
#include "focq/logic/printer.h"
#include "focq/structure/encode.h"
#include "focq/structure/gaifman.h"
#include "test_util.h"

namespace focq {
namespace {

TEST(RootedIso, PathsAndCycles) {
  Structure p4a = EncodeGraph(MakePath(4));
  Structure p4b = EncodeGraph(MakePath(4));
  // Same rooted position: isomorphic.
  EXPECT_TRUE(RootedIsomorphic(p4a, 0, p4b, 0));
  EXPECT_TRUE(RootedIsomorphic(p4a, 0, p4b, 3));   // both endpoints
  EXPECT_TRUE(RootedIsomorphic(p4a, 1, p4b, 2));   // both inner
  // Different rooted position: not isomorphic as rooted structures.
  EXPECT_FALSE(RootedIsomorphic(p4a, 0, p4b, 1));
  // Path vs cycle of the same size: never isomorphic.
  Structure c4 = EncodeGraph(MakeCycle(4));
  EXPECT_FALSE(RootedIsomorphic(p4a, 0, c4, 0));
  // Cycles are vertex-transitive.
  Structure c4b = EncodeGraph(MakeCycle(4));
  EXPECT_TRUE(RootedIsomorphic(c4, 0, c4b, 2));
}

TEST(RootedIso, RespectsColors) {
  Structure a = EncodeGraph(MakePath(3));
  a.AddUnarySymbol("R", {0});
  Structure b = EncodeGraph(MakePath(3));
  b.AddUnarySymbol("R", {2});
  // Rooted at the red endpoint on both sides: isomorphic.
  EXPECT_TRUE(RootedIsomorphic(a, 0, b, 2));
  // Rooted at the red endpoint vs the plain endpoint: not isomorphic.
  EXPECT_FALSE(RootedIsomorphic(a, 0, b, 0));
  Structure c = EncodeGraph(MakePath(3));
  c.AddUnarySymbol("R", {1});
  EXPECT_FALSE(RootedIsomorphic(a, 0, c, 0));
}

TEST(RootedIso, RespectsDirection) {
  // Directed edge orientation matters even with the same Gaifman graph.
  Structure fwd = EncodeDigraph(2, {{0, 1}});
  Structure bwd = EncodeDigraph(2, {{1, 0}});
  EXPECT_FALSE(RootedIsomorphic(fwd, 0, bwd, 0));
  EXPECT_TRUE(RootedIsomorphic(fwd, 0, bwd, 1));
}

TEST(SphereTypes, PathHasLayeredTypes) {
  // On a long path at radius 2 there are exactly 3 types: distance-0, -1,
  // and >=2 from the nearest endpoint.
  Structure a = EncodeGraph(MakePath(30));
  Graph g = BuildGaifmanGraph(a);
  SphereTypeAssignment types = ComputeSphereTypes(a, g, 2);
  EXPECT_EQ(types.registry.NumTypes(), 3u);
  EXPECT_EQ(types.type_of[0], types.type_of[29]);
  EXPECT_EQ(types.type_of[1], types.type_of[28]);
  EXPECT_EQ(types.type_of[5], types.type_of[15]);
  EXPECT_NE(types.type_of[0], types.type_of[1]);
  EXPECT_NE(types.type_of[1], types.type_of[2]);
}

TEST(SphereTypes, BoundedDegreeSaturates) {
  // The number of radius-1 types on 3-regular-ish random graphs is bounded
  // independent of n.
  Rng rng(41);
  Structure small = EncodeGraph(MakeRandomBoundedDegree(100, 3, &rng));
  Structure large = EncodeGraph(MakeRandomBoundedDegree(800, 3, &rng));
  Graph gs = BuildGaifmanGraph(small);
  Graph gl = BuildGaifmanGraph(large);
  std::size_t ts = ComputeSphereTypes(small, gs, 1).registry.NumTypes();
  std::size_t tl = ComputeSphereTypes(large, gl, 1).registry.NumTypes();
  EXPECT_LE(tl, ts + 6);  // saturation: more data, (almost) no new types
  EXPECT_LE(tl, 20u);
}

TEST(HanfEval, CountSatisfyingMatchesNaive) {
  Rng rng(42);
  Var x = VarNamed("hex");
  for (int round = 0; round < 8; ++round) {
    Structure a = EncodeGraph(MakeRandomBoundedDegree(60, 3, &rng));
    std::vector<ElemId> reds;
    for (ElemId e = 0; e < a.universe_size(); ++e) {
      if (rng.NextBool(0.3)) reds.push_back(e);
    }
    a.AddUnarySymbol("R", reds);
    Graph g = BuildGaifmanGraph(a);
    Formula phi = test::RandomGuardedKernel({x}, 2, true, 2, &rng, 2);
    std::optional<std::uint32_t> r = SyntacticLocalityRadius(phi);
    ASSERT_TRUE(r.has_value());
    HanfEvaluator hanf(a, g);
    Result<CountInt> fast = hanf.CountSatisfying(phi, x, *r);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    NaiveEvaluator naive(a);
    EXPECT_EQ(*fast, *naive.CountSolutions(phi)) << ToString(phi);
    EXPECT_GE(hanf.last_num_types(), 1u);
  }
}

TEST(HanfEval, RejectsNonLocalFormulas) {
  Structure a = EncodeGraph(MakePath(5));
  Graph g = BuildGaifmanGraph(a);
  HanfEvaluator hanf(a, g);
  Var x = VarNamed("hrx"), y = VarNamed("hry");
  Result<CountInt> r = hanf.CountSatisfying(Exists(y, Atom("E", {x, y})), x, 3);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
  // Local but with a too-small budget: also rejected.
  Result<CountInt> r2 =
      hanf.CountSatisfying(DistAtMost(x, x, 0), x, 0);
  EXPECT_TRUE(r2.ok());  // radius 0 is enough for dist(x,x)<=0
}

TEST(HanfEval, BasicClTermMatchesBallEvaluator) {
  Rng rng(43);
  Var y1 = VarNamed("hby1"), y2 = VarNamed("hby2");
  for (int round = 0; round < 6; ++round) {
    Structure a = EncodeGraph(MakeRandomBoundedDegree(70, 3, &rng));
    std::vector<ElemId> reds;
    for (ElemId e = 0; e < a.universe_size(); ++e) {
      if (rng.NextBool(0.4)) reds.push_back(e);
    }
    a.AddUnarySymbol("R", reds);
    Graph g = BuildGaifmanGraph(a);
    Formula kernel = test::RandomQuantifierFree({y1, y2}, 2, true, 1, &rng);
    PatternGraph edge(2, 0);
    edge.SetEdge(0, 1);
    BasicClTerm basic{{y1, y2}, true, kernel, 1, edge};

    HanfEvaluator hanf(a, g);
    Result<std::vector<CountInt>> fast = hanf.EvaluateBasicAll(basic);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    ClTermBallEvaluator ball(a, g);
    Result<std::vector<CountInt>> expected = ball.EvaluateBasicAll(basic);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(*fast, *expected) << ToString(kernel);
  }
}

}  // namespace
}  // namespace focq
