#include <gtest/gtest.h>

#include "focq/core/api.h"
#include "focq/eval/naive_eval.h"
#include "focq/eval/query.h"
#include "focq/graph/generators.h"
#include "focq/logic/build.h"
#include "focq/structure/encode.h"
#include "test_util.h"

namespace focq {
namespace {

TEST(Foc1Query, ValidationRules) {
  Var x = VarNamed("qvx"), y = VarNamed("qvy");
  Foc1Query q;
  q.head_vars = {x};
  q.condition = Atom("R", {x});
  q.head_terms = {Count({y}, Atom("E", {x, y}))};
  EXPECT_TRUE(q.Validate().ok());

  Foc1Query dup = q;
  dup.head_vars = {x, x};
  EXPECT_FALSE(dup.Validate().ok());

  Foc1Query loose = q;
  loose.condition = Atom("E", {x, y});  // y is not a head variable
  EXPECT_FALSE(loose.Validate().ok());

  Foc1Query loose_term = q;
  loose_term.head_terms = {Count({}, Atom("R", {y}))};
  EXPECT_FALSE(loose_term.Validate().ok());

  Foc1Query not_foc1 = q;
  not_foc1.condition =
      And(Atom("R", {x}),
          TermEq(Count({}, Atom("R", {x})), Count({y}, Atom("E", {x, y}))));
  EXPECT_TRUE(not_foc1.Validate().ok());  // still one free var overall per app
}

TEST(Foc1Query, DegreeListingOnCycle) {
  // { (x, deg(x)) : true } on a 5-cycle: every vertex has degree 2.
  Structure a = EncodeGraph(MakeCycle(5));
  Var x = VarNamed("qdx"), y = VarNamed("qdy");
  Foc1Query q;
  q.head_vars = {x};
  q.condition = Eq(x, x);
  q.head_terms = {Count({y}, Atom("E", {x, y}))};
  Result<QueryResult> rows = EvaluateQueryNaive(q, a);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 5u);
  for (ElemId e = 0; e < 5; ++e) {
    EXPECT_EQ(rows->rows[e].elements, Tuple{e});
    EXPECT_EQ(rows->rows[e].counts, std::vector<CountInt>{2});
  }
}

TEST(Foc1Query, LocalEngineMatchesNaive) {
  Rng rng(2500);
  Var x = VarNamed("qlx"), y = VarNamed("qly");
  for (int round = 0; round < 12; ++round) {
    Structure a = test::RandomColoredStructure(15, 1.4, 0.4, &rng);
    Foc1Query q;
    q.head_vars = {x};
    q.condition = Ge1(Count({y}, And(Atom("E", {x, y}), Atom("R", {y}))));
    q.head_terms = {Count({y}, Atom("E", {x, y})),
                    Add(Count({y}, And(Atom("E", {x, y}), Atom("R", {y}))),
                        Int(7))};
    Result<QueryResult> naive =
        EvaluateQuery(q, a, EvalOptions{Engine::kNaive, TermEngine::kBall});
    Result<QueryResult> local =
        EvaluateQuery(q, a, EvalOptions{Engine::kLocal, TermEngine::kBall});
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    EXPECT_EQ(naive->rows, local->rows);
  }
}

TEST(Foc1Query, NullaryHeads) {
  // { (#nodes, #edges) : true }.
  Structure a = EncodeGraph(MakePath(6));
  Var x = VarNamed("qnx"), y = VarNamed("qny");
  Foc1Query q;
  q.condition = Not(Exists(x, Not(Eq(x, x))));  // the paper's tautology
  q.head_terms = {Count({x}, Eq(x, x)), Count({x, y}, Atom("E", {x, y}))};
  for (Engine engine : {Engine::kNaive, Engine::kLocal}) {
    Result<QueryResult> rows =
        EvaluateQuery(q, a, EvalOptions{engine, TermEngine::kBall});
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    ASSERT_EQ(rows->rows.size(), 1u);
    EXPECT_EQ(rows->rows[0].counts, (std::vector<CountInt>{6, 10}));
  }
}

TEST(Foc1Query, TwoVariableHeads) {
  // { (x, y, deg(x) * deg(y)) : E(x, y) } on a path.
  Structure a = EncodeGraph(MakePath(4));
  Var x = VarNamed("qtx"), y = VarNamed("qty"), z = VarNamed("qtz");
  Foc1Query q;
  q.head_vars = {x, y};
  q.condition = Atom("E", {x, y});
  q.head_terms = {Mul(Count({z}, Atom("E", {x, z})),
                      Count({z}, Atom("E", {y, z})))};
  Result<QueryResult> rows = EvaluateQuery(q, a, {});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 6u);  // 3 undirected edges, both directions
  // Rows are lexicographic: (0,1), (1,0), (1,2), ...
  EXPECT_EQ(rows->rows[0].elements, (Tuple{0, 1}));
  EXPECT_EQ(rows->rows[0].counts, std::vector<CountInt>{2});  // 1 * 2
  EXPECT_EQ(rows->rows[1].elements, (Tuple{1, 0}));
  EXPECT_EQ(rows->rows[1].counts, std::vector<CountInt>{2});  // 2 * 1
  EXPECT_EQ(rows->rows[2].elements, (Tuple{1, 2}));
  EXPECT_EQ(rows->rows[2].counts, std::vector<CountInt>{4});  // 2 * 2
}

// The Section 5 free-variable elimination: A |= phi[a-bar] iff the
// sentencized version holds on the expanded structure, and term values
// carry over.
TEST(Sentencize, PreservesSemantics) {
  Rng rng(2600);
  Var x = VarNamed("szx"), y = VarNamed("szy");
  for (int round = 0; round < 10; ++round) {
    Structure a = test::RandomColoredStructure(10, 1.4, 0.4, &rng);
    Foc1Query q;
    q.head_vars = {x};
    q.condition = Ge1(Count({y}, And(Atom("E", {x, y}), Atom("R", {y}))));
    q.head_terms = {Count({y}, Atom("E", {x, y}))};
    NaiveEvaluator naive(a);
    for (ElemId e = 0; e < a.universe_size(); ++e) {
      SentencizedQuery s = SentencizeAt(q, a, {e});
      NaiveEvaluator expanded(s.structure);
      EXPECT_EQ(naive.Satisfies(q.condition, {{x, e}}),
                expanded.Satisfies(s.sentence));
      EXPECT_EQ(*naive.Evaluate(q.head_terms[0], {{x, e}}),
                *expanded.Evaluate(s.ground_terms[0]));
      // The ground terms really are ground.
      EXPECT_TRUE(FreeVars(s.ground_terms[0]).empty());
      EXPECT_TRUE(FreeVars(s.sentence).empty());
    }
  }
}

}  // namespace
}  // namespace focq
