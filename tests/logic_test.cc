#include <gtest/gtest.h>

#include <algorithm>

#include "focq/logic/build.h"
#include "focq/logic/expr.h"
#include "focq/logic/fragment.h"
#include "focq/logic/parser.h"
#include "focq/logic/printer.h"
#include "focq/logic/qrank.h"
#include "focq/logic/vars.h"

namespace focq {
namespace {

TEST(Vars, InterningStable) {
  Var x1 = VarNamed("x");
  Var x2 = VarNamed("x");
  Var y = VarNamed("y");
  EXPECT_EQ(x1, x2);
  EXPECT_NE(x1, y);
  EXPECT_EQ(VarName(x1), "x");
  Var f1 = FreshVar("x");
  Var f2 = FreshVar("x");
  EXPECT_NE(f1, f2);
  EXPECT_NE(f1, x1);
}

TEST(Expr, FreeVarsBasics) {
  Var x = VarNamed("fx"), y = VarNamed("fy"), z = VarNamed("fz");
  Formula atom = Atom("E", {x, y});
  EXPECT_EQ(FreeVars(atom), (std::vector<Var>(
                                {std::min(x, y), std::max(x, y)})));
  Formula ex = Exists(y, atom);
  EXPECT_EQ(FreeVars(ex), std::vector<Var>{x});
  Term count = Count({x}, And(atom, Atom("E", {y, z})));
  std::vector<Var> free = FreeVars(count);
  EXPECT_EQ(free.size(), 2u);  // y and z
  EXPECT_TRUE(std::find(free.begin(), free.end(), x) == free.end());
}

TEST(Expr, CountDepth) {
  Var x = VarNamed("dx"), y = VarNamed("dy");
  Formula atom = Atom("E", {x, y});
  EXPECT_EQ(CountDepth(atom.node()), 0);
  Term t1 = Count({y}, atom);
  EXPECT_EQ(CountDepth(t1.node()), 1);
  Formula p = Ge1(t1);
  Term t2 = Count({x}, p);
  EXPECT_EQ(CountDepth(t2.node()), 2);
  Term sum = Add(t1, Int(5));
  EXPECT_EQ(CountDepth(sum.node()), 1);
}

TEST(Expr, QuantifierRank) {
  Var x = VarNamed("qx"), y = VarNamed("qy");
  EXPECT_EQ(QuantifierRank(Eq(x, y).node()), 0);
  EXPECT_EQ(QuantifierRank(Exists(x, Exists(y, Eq(x, y))).node()), 2);
  EXPECT_EQ(QuantifierRank(Or(Exists(x, Eq(x, x)), Exists(y, Eq(y, y))).node()),
            1);
}

TEST(Expr, StructuralEqualityAndHash) {
  Var x = VarNamed("hx"), y = VarNamed("hy");
  Formula a = And(Atom("E", {x, y}), Eq(x, y));
  Formula b = And(Atom("E", {x, y}), Eq(x, y));
  Formula c = And(Atom("E", {y, x}), Eq(x, y));
  EXPECT_TRUE(ExprEquals(a.node(), b.node()));
  EXPECT_FALSE(ExprEquals(a.node(), c.node()));
  EXPECT_EQ(ExprHash(a.node()), ExprHash(b.node()));
}

TEST(Expr, RenameFreeVar) {
  Var x = VarNamed("rx"), y = VarNamed("ry"), z = VarNamed("rz");
  Formula f = And(Atom("E", {x, y}), Exists(x, Atom("E", {x, y})));
  ExprRef renamed = RenameFreeVar(f.ref(), x, z);
  // Only the free occurrence changes.
  EXPECT_EQ(ToString(*renamed),
            "(E(" + VarName(z) + ", " + VarName(y) + ") & (exists " +
                VarName(x) + ". (E(" + VarName(x) + ", " + VarName(y) +
                "))))");
}

TEST(Expr, AtomSymbols) {
  Var x = VarNamed("sx");
  Formula f = And(Atom("E", {x, x}), Or(Atom("R", {x}), Atom("E", {x, x})));
  EXPECT_EQ(AtomSymbols(f.node()), (std::vector<std::string>{"E", "R"}));
}

TEST(Fragment, PureFoAndFoc1) {
  Var x = VarNamed("gx"), y = VarNamed("gy");
  Formula fo = Exists(x, Atom("E", {x, y}));
  EXPECT_TRUE(IsPureFO(fo.node()));
  EXPECT_TRUE(IsFOC1(fo));

  Formula counting = Ge1(Count({y}, Atom("E", {x, y})));
  EXPECT_FALSE(IsPureFO(counting.node()));
  EXPECT_TRUE(IsFOC1(counting));

  // Two free variables across the predicate's terms: not FOC1.
  Formula bad = TermEq(Count({}, Atom("R", {x})), Count({}, Atom("R", {y})));
  EXPECT_FALSE(IsFOC1(bad));
  EXPECT_EQ(CheckFOC1(bad.node()).code(), StatusCode::kInvalidArgument);

  Formula dist = DistAtMost(x, y, 3);
  EXPECT_FALSE(IsPureFO(dist.node()));
  EXPECT_TRUE(IsFOPlus(dist.node()));
}

TEST(Fragment, PaperExample32IsFoc1) {
  // Prime(#(x).x=x + #(x,y).E(x,y)) -- first formula of Example 3.2.
  Var x = VarNamed("e32x"), y = VarNamed("e32y");
  Formula f = Pred(PredPrime(), {Add(Count({x}, Eq(x, x)),
                                     Count({x, y}, Atom("E", {x, y})))});
  EXPECT_TRUE(IsFOC1(f));

  // The third formula of Example 3.2 is not in FOC1: the inner P= has free
  // variables x and y.
  Formula inner = TermEq(Count({VarNamed("e32z")}, Atom("E", {x, VarNamed("e32z")})),
                         Count({VarNamed("e32w")}, Atom("E", {y, VarNamed("e32w")})));
  Formula outer = Exists(x, Pred(PredPrime(), {Count({y}, inner)}));
  EXPECT_FALSE(IsFOC1(outer));
}

TEST(NumPred, StandardSemantics) {
  EXPECT_TRUE(PredGe1()->Holds({1}));
  EXPECT_FALSE(PredGe1()->Holds({0}));
  EXPECT_FALSE(PredGe1()->Holds({-3}));
  EXPECT_TRUE(PredEq()->Holds({4, 4}));
  EXPECT_FALSE(PredEq()->Holds({4, 5}));
  EXPECT_TRUE(PredLeq()->Holds({-2, 7}));
  EXPECT_TRUE(PredPrime()->Holds({13}));
  EXPECT_FALSE(PredPrime()->Holds({12}));
  EXPECT_TRUE(PredEven()->Holds({-4}));
  EXPECT_TRUE(PredDivides()->Holds({3, 12}));
  EXPECT_FALSE(PredDivides()->Holds({0, 12}));
  EXPECT_EQ(StandardPredicates().Find("prime")->arity(), 1);
  EXPECT_EQ(StandardPredicates().Find("nope"), nullptr);
}

TEST(Parser, RoundTripFormulas) {
  for (const char* text : {
           "x = y",
           "E(x, y)",
           "!(E(x, y))",
           "(E(x, y) | x = y)",
           "(E(x, y) & !(x = y) & R(x))",
           "exists x. (E(x, y))",
           "forall x. (exists y. (E(x, y)))",
           "true",
           "false",
           "dist(x, y) <= 3",
           "@ge1(#(y). (E(x, y)))",
           "@eq(#(x). (R(x)), (2 + 3))",
           "@prime((#(x). (x = x) + #(x, y). (E(x, y))))",
       }) {
    Result<Formula> parsed = ParseFormula(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    Result<Formula> reparsed = ParseFormula(ToString(*parsed));
    ASSERT_TRUE(reparsed.ok()) << ToString(*parsed);
    EXPECT_TRUE(ExprEquals(parsed->node(), reparsed->node())) << text;
  }
}

TEST(Parser, RoundTripTerms) {
  for (const char* text : {
           "5",
           "-5",
           "(1 + 2)",
           "(2 * #(x). (R(x)))",
           "(#(x). (R(x)) - 4)",
           "#(). (true)",
           "#(x, y). ((E(x, y) | E(y, x)))",
       }) {
    Result<Term> parsed = ParseTerm(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    Result<Term> reparsed = ParseTerm(ToString(*parsed));
    ASSERT_TRUE(reparsed.ok()) << ToString(*parsed);
    EXPECT_TRUE(ExprEquals(parsed->node(), reparsed->node())) << text;
  }
}

TEST(Parser, Errors) {
  EXPECT_FALSE(ParseFormula("E(x").ok());
  EXPECT_FALSE(ParseFormula("@nosuchpred(1)").ok());
  EXPECT_FALSE(ParseFormula("exists . x = x").ok());
  EXPECT_FALSE(ParseFormula("x =").ok());
  EXPECT_FALSE(ParseTerm("#(x) x = x").ok());
  EXPECT_FALSE(ParseFormula("@eq(1)").ok());  // arity mismatch
  EXPECT_FALSE(ParseFormula("x = y zzz").ok());  // trailing junk
}

TEST(QRank, FqValues) {
  EXPECT_EQ(FqValue(1, 0), 4);
  EXPECT_EQ(FqValue(1, 1), 16);
  EXPECT_EQ(FqValue(2, 1), 512);  // 8^3
  EXPECT_FALSE(FqValue(10, 20).has_value());  // overflows int64
}

TEST(QRank, RankChecks) {
  Var x = VarNamed("qrx"), y = VarNamed("qry");
  // Quantifier rank 1, distance atom under one quantifier.
  Formula f = Exists(y, DistAtMost(x, y, 4));
  EXPECT_TRUE(HasQRankAtMost(f.node(), 1, 1));   // bound allowed: (4)^(1+0)=4
  EXPECT_FALSE(HasQRankAtMost(f.node(), 1, 0));  // quantifier rank too big
  Formula g = Exists(y, DistAtMost(x, y, 5));
  EXPECT_FALSE(HasQRankAtMost(g.node(), 1, 1));  // 5 > 4
  EXPECT_TRUE(HasQRankAtMost(g.node(), 2, 1));   // 5 <= 8^2
}

}  // namespace
}  // namespace focq
