// The focq_serve wire protocol codec: round-trips, incremental decoding in
// adversarially small chunks, and the malformed-frame taxonomy (truncated
// length prefix, oversized length, empty payload, unknown kind, garbage
// body) — every bad input must yield a clean sticky Status, never a crash.
#include "focq/serve/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace focq {
namespace serve {
namespace {

TEST(ServeProtocolTest, ScalarHelpersRoundTripLittleEndian) {
  std::string out;
  AppendU32(&out, 0x01020304u);
  AppendU64(&out, 0x0102030405060708ull);
  ASSERT_EQ(out.size(), 12u);
  // Little-endian on the wire, byte for byte.
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(out[3]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(out[4]), 0x08);
  EXPECT_EQ(static_cast<unsigned char>(out[11]), 0x01);
  EXPECT_EQ(ReadU32(out.data()), 0x01020304u);
  EXPECT_EQ(ReadU64(out.data() + 4), 0x0102030405060708ull);
}

TEST(ServeProtocolTest, RequestRoundTrip) {
  Request request;
  request.kind = FrameKind::kCount;
  request.id = 42;
  request.flags = kRequestFlagExplain;
  request.text = "@ge1(#(y). (E(x, y)) - 2)";

  FrameDecoder decoder;
  decoder.Feed(EncodeRequest(request));
  Result<std::optional<Frame>> frame = decoder.Next();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(frame->has_value());
  Result<Request> decoded = DecodeRequest(**frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, FrameKind::kCount);
  EXPECT_EQ(decoded->id, 42u);
  EXPECT_EQ(decoded->flags, kRequestFlagExplain);
  EXPECT_EQ(decoded->text, request.text);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_TRUE(decoder.AtFrameBoundary().ok());
}

TEST(ServeProtocolTest, TraceIdFlagRoundTripsOptionalField) {
  // kRequestFlagTraceId adds an optional u64 between the fixed header and
  // the statement text; it must round-trip alongside other flag bits.
  Request request;
  request.kind = FrameKind::kCheck;
  request.id = 11;
  request.flags = kRequestFlagExplain | kRequestFlagTraceId;
  request.trace_id = 0xdeadbeefcafef00dull;
  request.text = "E(x, y)";

  FrameDecoder decoder;
  decoder.Feed(EncodeRequest(request));
  Result<std::optional<Frame>> frame = decoder.Next();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(frame->has_value());
  Result<Request> decoded = DecodeRequest(**frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->flags, kRequestFlagExplain | kRequestFlagTraceId);
  EXPECT_EQ(decoded->trace_id, 0xdeadbeefcafef00dull);
  EXPECT_EQ(decoded->text, "E(x, y)");
  EXPECT_TRUE(decoder.AtFrameBoundary().ok());
}

TEST(ServeProtocolTest, TraceIdFieldAbsentWithoutFlag) {
  // Without the flag the first 8 text bytes must NOT be eaten as a trace
  // id, even when they look like one.
  Request request;
  request.kind = FrameKind::kTerm;
  request.id = 3;
  request.flags = 0;
  request.trace_id = 0x1234567890abcdefull;  // ignored by the encoder
  request.text = "12345678 trailing text";

  FrameDecoder decoder;
  decoder.Feed(EncodeRequest(request));
  Result<std::optional<Frame>> frame = decoder.Next();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  Result<Request> decoded = DecodeRequest(**frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->flags, 0u);
  EXPECT_EQ(decoded->trace_id, 0u);
  EXPECT_EQ(decoded->text, "12345678 trailing text");
}

TEST(ServeProtocolTest, TruncatedTraceIdBodyFailsBodyDecodeRecoverably) {
  // Flag set but fewer than 8 bytes follow the fixed header: the frame
  // itself is well-formed (framing survives, the stream stays usable) but
  // body decoding must report a clean truncation error.
  std::string body;
  AppendU32(&body, 21);  // request id
  body.push_back(static_cast<char>(kRequestFlagTraceId));
  body += "abc";  // 3 bytes where the 8-byte trace id should be
  std::string wire;
  AppendU32(&wire, static_cast<std::uint32_t>(1 + body.size()));
  wire.push_back(static_cast<char>(FrameKind::kCount));
  wire += body;

  FrameDecoder decoder;
  decoder.Feed(wire);
  Result<std::optional<Frame>> frame = decoder.Next();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(frame->has_value());
  Result<Request> decoded = DecodeRequest(**frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("truncated"), std::string::npos);
  EXPECT_TRUE(decoder.AtFrameBoundary().ok());  // recoverable: still in sync
}

TEST(ServeProtocolTest, ResponseRoundTripIncludingErrors) {
  for (bool ok : {true, false}) {
    Response response;
    response.ok = ok;
    response.id = 7;
    response.seq = (1ull << 40) + 5;  // seq is 64-bit on the wire
    response.text = ok ? "true" : "INVALID_ARGUMENT: nope";
    FrameDecoder decoder;
    decoder.Feed(EncodeResponse(response));
    Result<std::optional<Frame>> frame = decoder.Next();
    ASSERT_TRUE(frame.ok());
    ASSERT_TRUE(frame->has_value());
    Result<Response> decoded = DecodeResponse(**frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->ok, ok);
    EXPECT_EQ(decoded->id, 7u);
    EXPECT_EQ(decoded->seq, (1ull << 40) + 5);
    EXPECT_EQ(decoded->text, response.text);
  }
}

TEST(ServeProtocolTest, EmptyStatementTextRoundTrips) {
  Request request;
  request.kind = FrameKind::kCheck;
  request.id = 1;
  FrameDecoder decoder;
  decoder.Feed(EncodeRequest(request));
  Result<std::optional<Frame>> frame = decoder.Next();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  Result<Request> decoded = DecodeRequest(**frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->text, "");
}

TEST(ServeProtocolTest, ByteAtATimeDecodingMatchesOneShot) {
  // The decoder is incremental: the most adversarial chunking (one byte per
  // Feed) must produce exactly the frames of a single Feed.
  std::string wire;
  std::vector<Request> sent;
  for (std::uint32_t i = 0; i < 5; ++i) {
    Request request;
    request.kind = i % 2 == 0 ? FrameKind::kCheck : FrameKind::kTerm;
    request.id = i;
    request.text = "stmt-" + std::to_string(i);
    sent.push_back(request);
    AppendRequestFrame(&wire, request);
  }
  FrameDecoder decoder;
  std::vector<Request> got;
  for (char byte : wire) {
    decoder.Feed(std::string_view(&byte, 1));
    for (;;) {
      Result<std::optional<Frame>> next = decoder.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next->has_value()) break;
      Result<Request> decoded = DecodeRequest(**next);
      ASSERT_TRUE(decoded.ok());
      got.push_back(std::move(decoded).value());
    }
  }
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].id, sent[i].id);
    EXPECT_EQ(got[i].kind, sent[i].kind);
    EXPECT_EQ(got[i].text, sent[i].text);
  }
  EXPECT_TRUE(decoder.AtFrameBoundary().ok());
}

TEST(ServeProtocolTest, TruncatedLengthPrefixIsDetectedAtEof) {
  FrameDecoder decoder;
  decoder.Feed(std::string_view("\x07\x00", 2));  // 2 of 4 length bytes
  Result<std::optional<Frame>> next = decoder.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());  // legitimately waiting for more bytes
  // ... but a stream that *ends* here died mid-frame.
  Status boundary = decoder.AtFrameBoundary();
  EXPECT_FALSE(boundary.ok());
  EXPECT_NE(boundary.message().find("mid-frame"), std::string::npos);
}

TEST(ServeProtocolTest, TruncatedBodyIsDetectedAtEof) {
  std::string wire = EncodeRequest(
      {FrameKind::kCount, 9, 0, 0, "count something long enough"});
  FrameDecoder decoder;
  decoder.Feed(std::string_view(wire).substr(0, wire.size() - 3));
  Result<std::optional<Frame>> next = decoder.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
  EXPECT_FALSE(decoder.AtFrameBoundary().ok());
}

TEST(ServeProtocolTest, OversizedLengthPoisonsTheStream) {
  std::string wire;
  AppendU32(&wire, kMaxFrameBytes + 1);
  wire.push_back(static_cast<char>(FrameKind::kCheck));
  FrameDecoder decoder;
  decoder.Feed(wire);
  Result<std::optional<Frame>> next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("oversized"), std::string::npos);
  // Sticky: feeding valid frames afterwards cannot resurrect the stream
  // (there is no way to resynchronise after a corrupt length).
  decoder.Feed(EncodeRequest({FrameKind::kPing, 1, 0, 0, ""}));
  Result<std::optional<Frame>> again = decoder.Next();
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().message(), next.status().message());
  EXPECT_FALSE(decoder.AtFrameBoundary().ok());
}

TEST(ServeProtocolTest, ZeroLengthFramePoisonsTheStream) {
  std::string wire;
  AppendU32(&wire, 0);
  FrameDecoder decoder;
  decoder.Feed(wire);
  Result<std::optional<Frame>> next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("empty frame"), std::string::npos);
}

TEST(ServeProtocolTest, UnknownKindBytePoisonsTheStream) {
  std::string wire;
  AppendU32(&wire, 1);
  wire.push_back(static_cast<char>(0x7f));  // not a defined kind
  FrameDecoder decoder;
  decoder.Feed(wire);
  Result<std::optional<Frame>> next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("unknown frame kind"),
            std::string::npos);
}

TEST(ServeProtocolTest, GarbagePayloadDecodesAsFrameButFailsBodyDecode) {
  // A well-formed frame whose body is too short for the request header:
  // framing survives (the stream stays usable), body decoding reports.
  std::string wire;
  AppendU32(&wire, 3);
  wire.push_back(static_cast<char>(FrameKind::kCheck));
  wire.push_back('\x01');
  wire.push_back('\x02');
  FrameDecoder decoder;
  decoder.Feed(wire);
  Result<std::optional<Frame>> frame = decoder.Next();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  Result<Request> decoded = DecodeRequest(**frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("truncated"), std::string::npos);
  EXPECT_TRUE(decoder.AtFrameBoundary().ok());  // stream is still in sync
}

TEST(ServeProtocolTest, DirectionMismatchIsRejected) {
  Frame response_frame;
  response_frame.kind = FrameKind::kOk;
  response_frame.body = std::string(12, '\0');
  EXPECT_FALSE(DecodeRequest(response_frame).ok());

  Frame request_frame;
  request_frame.kind = FrameKind::kCheck;
  request_frame.body = std::string(5, '\0');
  EXPECT_FALSE(DecodeResponse(request_frame).ok());
}

TEST(ServeProtocolTest, ControlFramesRejectStatementText) {
  Frame frame;
  frame.kind = FrameKind::kPing;
  frame.body = std::string(5, '\0') + "unexpected";
  Result<Request> decoded = DecodeRequest(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("no statement text"),
            std::string::npos);
}

TEST(ServeProtocolTest, StatementKindWordsMatchBatchGrammar) {
  EXPECT_EQ(StatementKindFromWord("check"), FrameKind::kCheck);
  EXPECT_EQ(StatementKindFromWord("count"), FrameKind::kCount);
  EXPECT_EQ(StatementKindFromWord("term"), FrameKind::kTerm);
  EXPECT_EQ(StatementKindFromWord("update"), FrameKind::kUpdate);
  EXPECT_FALSE(StatementKindFromWord("ping").has_value());
  EXPECT_FALSE(StatementKindFromWord("").has_value());
  for (FrameKind kind : {FrameKind::kCheck, FrameKind::kCount,
                         FrameKind::kTerm, FrameKind::kUpdate}) {
    EXPECT_TRUE(IsStatementKind(kind));
    EXPECT_EQ(StatementKindFromWord(FrameKindName(kind)), kind);
  }
  EXPECT_TRUE(IsReadStatement(FrameKind::kCheck));
  EXPECT_FALSE(IsReadStatement(FrameKind::kUpdate));
}

TEST(ServeProtocolTest, LongStreamCompactionKeepsDecodingCorrect) {
  // Enough traffic to trigger the decoder's internal buffer compaction.
  std::string wire;
  const int kFrames = 2000;
  for (int i = 0; i < kFrames; ++i) {
    AppendRequestFrame(&wire, {FrameKind::kTerm,
                               static_cast<std::uint32_t>(i), 0, 0,
                               std::string(16, 'x')});
  }
  FrameDecoder decoder;
  int decoded = 0;
  std::size_t offset = 0;
  while (offset < wire.size()) {
    const std::size_t chunk = std::min<std::size_t>(97, wire.size() - offset);
    decoder.Feed(std::string_view(wire).substr(offset, chunk));
    offset += chunk;
    for (;;) {
      Result<std::optional<Frame>> next = decoder.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
      Result<Request> request = DecodeRequest(**next);
      ASSERT_TRUE(request.ok());
      EXPECT_EQ(request->id, static_cast<std::uint32_t>(decoded));
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, kFrames);
  EXPECT_TRUE(decoder.AtFrameBoundary().ok());
}

}  // namespace
}  // namespace serve
}  // namespace focq
