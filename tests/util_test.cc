#include <gtest/gtest.h>

#include "focq/util/checked_arith.h"
#include "focq/util/hash.h"
#include "focq/util/rng.h"
#include "focq/util/status.h"

namespace focq {
namespace {

TEST(CheckedArith, AddBasics) {
  EXPECT_EQ(CheckedAdd(2, 3), 5);
  EXPECT_EQ(CheckedAdd(-2, 3), 1);
  EXPECT_EQ(CheckedAdd(INT64_MAX, 0), INT64_MAX);
  EXPECT_FALSE(CheckedAdd(INT64_MAX, 1).has_value());
  EXPECT_FALSE(CheckedAdd(INT64_MIN, -1).has_value());
}

TEST(CheckedArith, SubBasics) {
  EXPECT_EQ(CheckedSub(2, 3), -1);
  EXPECT_FALSE(CheckedSub(INT64_MIN, 1).has_value());
  EXPECT_FALSE(CheckedSub(0, INT64_MIN).has_value());
}

TEST(CheckedArith, MulBasics) {
  EXPECT_EQ(CheckedMul(6, 7), 42);
  EXPECT_EQ(CheckedMul(-6, 7), -42);
  EXPECT_EQ(CheckedMul(INT64_MAX, 1), INT64_MAX);
  EXPECT_FALSE(CheckedMul(INT64_MAX, 2).has_value());
  EXPECT_FALSE(CheckedMul(INT64_MIN, -1).has_value());
}

TEST(CheckedArith, PowBasics) {
  EXPECT_EQ(CheckedPow(2, 10), 1024);
  EXPECT_EQ(CheckedPow(10, 0), 1);
  EXPECT_EQ(CheckedPow(-3, 3), -27);
  EXPECT_FALSE(CheckedPow(10, 40).has_value());
  EXPECT_FALSE(CheckedPow(2, -1).has_value());
}

TEST(CheckedArith, PrimeSmall) {
  EXPECT_FALSE(IsPrime(-7));
  EXPECT_FALSE(IsPrime(0));
  EXPECT_FALSE(IsPrime(1));
  EXPECT_TRUE(IsPrime(2));
  EXPECT_TRUE(IsPrime(3));
  EXPECT_FALSE(IsPrime(4));
  EXPECT_TRUE(IsPrime(97));
  EXPECT_FALSE(IsPrime(99));
}

TEST(CheckedArith, PrimeAgainstSieve) {
  // Cross-check against trial division up to 10000.
  for (CountInt n = 2; n < 10000; ++n) {
    bool expected = true;
    for (CountInt d = 2; d * d <= n; ++d) {
      if (n % d == 0) {
        expected = false;
        break;
      }
    }
    EXPECT_EQ(IsPrime(n), expected) << n;
  }
}

TEST(CheckedArith, PrimeLarge) {
  EXPECT_TRUE(IsPrime(2147483647));           // 2^31 - 1, Mersenne prime
  EXPECT_FALSE(IsPrime(2147483649));          // 3 * 715827883
  EXPECT_TRUE(IsPrime(9223372036854775783));  // largest prime below 2^63
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
    std::int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RoughlyUniform) {
  Rng rng(3);
  int buckets[10] = {};
  for (int i = 0; i < 100000; ++i) ++buckets[rng.NextBelow(10)];
  for (int b : buckets) {
    EXPECT_GT(b, 9000);
    EXPECT_LT(b, 11000);
  }
}

TEST(Status, RoundTrip) {
  EXPECT_TRUE(Status::Ok().ok());
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad");
}

TEST(Result, ValueAndStatus) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> bad = Status::NotFound("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(Hash, VectorHashDistinguishes) {
  VectorHash h;
  std::vector<int> a = {1, 2, 3};
  std::vector<int> b = {1, 2, 4};
  std::vector<int> c = {1, 2, 3};
  EXPECT_EQ(h(a), h(c));
  EXPECT_NE(h(a), h(b));  // not guaranteed, but catastrophic if violated here
}

}  // namespace
}  // namespace focq
