// The work-stealing pool and its deterministic ParallelFor: chunk grids
// partition [0, n) exactly, every index is visited exactly once for any
// thread count, nested fan-out does not deadlock (the caller always drains
// its own grid), and ordered chunk reduction reproduces the serial sum.
#include "focq/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <vector>

namespace focq {
namespace {

TEST(EffectiveThreadsTest, NormalizesTheKnob) {
  EXPECT_EQ(EffectiveThreads(1), 1);
  EXPECT_EQ(EffectiveThreads(4), 4);
  EXPECT_EQ(EffectiveThreads(-3), 1);  // clamped up
  EXPECT_EQ(EffectiveThreads(0), HardwareThreads());
  EXPECT_GE(HardwareThreads(), 1);
}

TEST(ChunkGridTest, PartitionsTheRangeExactly) {
  for (std::size_t n : {0u, 1u, 2u, 7u, 64u, 1000u, 4097u}) {
    for (int workers : {0, 1, 2, 3, 8, 64}) {
      ChunkGrid grid = MakeChunkGrid(n, workers);
      ASSERT_GE(grid.num_chunks, 1u);
      ASSERT_LE(grid.num_chunks, std::max<std::size_t>(n, 1));
      std::size_t expected_begin = 0;
      for (std::size_t c = 0; c < grid.num_chunks; ++c) {
        auto [begin, end] = grid.Bounds(c);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LE(begin, end);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(ChunkGridTest, NormalizesTheWorkerKnobLikeParallelFor) {
  // Callers size per-chunk result arrays with MakeChunkGrid(n, knob) and run
  // ParallelFor(knob, n, ...); both must agree for every knob value — in
  // particular 0 ("all hardware threads") must not collapse to one worker.
  for (std::size_t n : {1u, 100u, 4097u}) {
    EXPECT_EQ(MakeChunkGrid(n, 0).num_chunks,
              MakeChunkGrid(n, HardwareThreads()).num_chunks);
    EXPECT_EQ(MakeChunkGrid(n, -3).num_chunks,
              MakeChunkGrid(n, 1).num_chunks);
  }
}

TEST(ChunkGridTest, SameParametersGiveSameGrid) {
  // The grid is a pure function of (n, workers) -- this is what makes the
  // chunk decomposition (and hence ordered reduction) deterministic.
  ChunkGrid a = MakeChunkGrid(12345, 8);
  ChunkGrid b = MakeChunkGrid(12345, 8);
  ASSERT_EQ(a.num_chunks, b.num_chunks);
  for (std::size_t c = 0; c < a.num_chunks; ++c) {
    EXPECT_EQ(a.Bounds(c), b.Bounds(c));
  }
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4);
  constexpr int kTasks = 500;
  std::atomic<int> done{0};
  std::atomic<int> remaining{kTasks};
  std::mutex mutex;
  std::condition_variable cv;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      done.fetch_add(1);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mutex);
        cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return remaining.load() == 0; });
  EXPECT_EQ(done.load(), kTasks);
}

class ParallelForTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelForTest, VisitsEachIndexExactlyOnce) {
  const int threads = GetParam();
  for (std::size_t n : {0u, 1u, 2u, 63u, 1024u, 10001u}) {
    std::vector<std::atomic<int>> visits(n);
    for (auto& v : visits) v.store(0);
    ParallelFor(threads, n,
                [&](std::size_t /*chunk*/, std::size_t begin,
                    std::size_t end) {
                  for (std::size_t i = begin; i < end; ++i) {
                    visits[i].fetch_add(1);
                  }
                });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "index " << i << " n " << n;
    }
  }
}

TEST_P(ParallelForTest, ChunkIndicesStayInsideTheCallerSizedGrid) {
  // Callers allocate per-chunk result arrays of size
  // MakeChunkGrid(n, knob).num_chunks and index them with the chunk id the
  // body receives; any id at or past that bound is an out-of-bounds write.
  const int threads = GetParam();
  for (std::size_t n : {1u, 7u, 1000u, 4097u}) {
    const std::size_t num_chunks = MakeChunkGrid(n, threads).num_chunks;
    std::atomic<std::size_t> max_chunk{0};
    ParallelFor(threads, n,
                [&](std::size_t chunk, std::size_t /*begin*/,
                    std::size_t /*end*/) {
                  std::size_t seen = max_chunk.load();
                  while (chunk > seen &&
                         !max_chunk.compare_exchange_weak(seen, chunk)) {
                  }
                });
    EXPECT_LT(max_chunk.load(), num_chunks) << "n " << n;
  }
}

TEST_P(ParallelForTest, OrderedChunkReductionMatchesSerialSum) {
  const int threads = GetParam();
  const std::size_t n = 5000;
  std::vector<std::int64_t> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = static_cast<std::int64_t>((i * 2654435761u) % 1000);
  }
  std::int64_t serial = std::accumulate(values.begin(), values.end(),
                                        std::int64_t{0});
  const std::size_t num_chunks = MakeChunkGrid(n, threads).num_chunks;
  std::vector<std::int64_t> partial(num_chunks, 0);
  ParallelFor(threads, n,
              [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                  partial[chunk] += values[i];
                }
              });
  std::int64_t total = 0;
  for (std::int64_t p : partial) total += p;
  EXPECT_EQ(total, serial);
}

TEST_P(ParallelForTest, NestedFanOutDoesNotDeadlock) {
  // Inner ParallelFor calls run on pool workers; the caller-participates
  // drain keeps them from waiting on each other.
  const int threads = GetParam();
  const std::size_t outer = 16, inner = 64;
  std::vector<std::atomic<int>> visits(outer * inner);
  for (auto& v : visits) v.store(0);
  ParallelFor(threads, outer,
              [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
                for (std::size_t o = begin; o < end; ++o) {
                  ParallelFor(threads, inner,
                              [&, o](std::size_t /*c*/, std::size_t b,
                                     std::size_t e) {
                                for (std::size_t i = b; i < e; ++i) {
                                  visits[o * inner + i].fetch_add(1);
                                }
                              });
                }
              });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "slot " << i;
  }
}

TEST_P(ParallelForTest, StressManySmallGrids) {
  const int threads = GetParam();
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = static_cast<std::size_t>(round % 37);
    std::atomic<std::size_t> sum{0};
    ParallelFor(threads, n,
                [&](std::size_t /*chunk*/, std::size_t begin,
                    std::size_t end) {
                  std::size_t local = 0;
                  for (std::size_t i = begin; i < end; ++i) local += i + 1;
                  sum.fetch_add(local);
                });
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelForTest,
                         ::testing::Values(0, 1, 2, 4, 8));

}  // namespace
}  // namespace focq
