// Incremental evaluation under structure updates (DESIGN.md §3e): the
// tuple-level update API, localized Gaifman/cover/sphere repair inside
// EvalContext::ApplyUpdate, the cover.clusters.rebuilt locality guarantee,
// and the incremental≡rebuild answer equivalence at several thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "focq/core/api.h"
#include "focq/cover/neighborhood_cover.h"
#include "focq/graph/generators.h"
#include "focq/hanf/sphere.h"
#include "focq/logic/parser.h"
#include "focq/structure/encode.h"
#include "focq/structure/gaifman.h"
#include "focq/structure/structure.h"
#include "focq/structure/update.h"
#include "focq/util/rng.h"

namespace focq {
namespace {

// A long path with a sprinkling of red vertices: sparse, so repair regions
// stay tiny relative to the structure.
Structure PathWithReds(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Structure a = EncodeGraph(MakePath(n));
  std::vector<ElemId> reds;
  for (ElemId e = 0; e < a.universe_size(); ++e) {
    if (rng.NextBool(0.4)) reds.push_back(e);
  }
  a.AddUnarySymbol("R", reds);
  return a;
}

TupleUpdate Insert(SymbolId symbol, Tuple t) {
  return TupleUpdate{UpdateKind::kInsert, symbol, std::move(t)};
}

TupleUpdate Delete(SymbolId symbol, Tuple t) {
  return TupleUpdate{UpdateKind::kDelete, symbol, std::move(t)};
}

TEST(StructureUpdate, InsertDeleteRoundTripWithNoopDetection) {
  Structure a(Signature({{"E", 2}, {"R", 1}}), 4);
  EXPECT_TRUE(a.InsertTuple(0, {0, 1}));
  EXPECT_FALSE(a.InsertTuple(0, {0, 1}));  // duplicate: no-op
  EXPECT_TRUE(a.Holds(0, {0, 1}));
  EXPECT_TRUE(a.DeleteTuple(0, {0, 1}));
  EXPECT_FALSE(a.DeleteTuple(0, {0, 1}));  // absent: no-op
  EXPECT_FALSE(a.Holds(0, {0, 1}));
  EXPECT_EQ(a.relation(0).NumTuples(), 0u);
}

TEST(StructureUpdate, RelationRemoveKeepsFlatOrderStable) {
  Relation r(1);
  r.Add({3});
  r.Add({1});
  r.Add({2});
  EXPECT_TRUE(r.Remove({1}));
  ASSERT_EQ(r.NumTuples(), 2u);
  EXPECT_EQ(r.tuples()[0], Tuple{3});
  EXPECT_EQ(r.tuples()[1], Tuple{2});
  EXPECT_FALSE(r.Remove({1}));
}

TEST(GraphUpdate, InsertAndEraseEdgeMaintainSortedAdjacency) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.Finalize();
  EXPECT_TRUE(g.InsertEdge(0, 3));
  EXPECT_FALSE(g.InsertEdge(3, 0));  // already present (either orientation)
  EXPECT_FALSE(g.InsertEdge(2, 2));  // self-loop: ignored
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 3));
  EXPECT_TRUE(std::is_sorted(g.Neighbors(0).begin(), g.Neighbors(0).end()));
  EXPECT_TRUE(g.EraseEdge(1, 0));
  EXPECT_FALSE(g.EraseEdge(1, 0));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(GaifmanMaintainer, MatchesFullRebuildUnderRandomUpdates) {
  Rng rng(11);
  Structure a = EncodeGraph(MakeRandomBoundedDegree(30, 3, &rng));
  Graph g = BuildGaifmanGraph(a);
  GaifmanMaintainer maintainer(a);
  // Random inserts and deletes; after every step the maintained graph must
  // equal a from-scratch rebuild (edge multiset equality).
  for (int step = 0; step < 60; ++step) {
    ElemId u = static_cast<ElemId>(rng.NextBelow(a.universe_size()));
    ElemId v = static_cast<ElemId>(rng.NextBelow(a.universe_size()));
    TupleUpdate update = rng.NextBool(0.5) ? Insert(0, {u, v}) : Delete(0, {u, v});
    Result<bool> changed = ApplyToStructure(&a, update);
    ASSERT_TRUE(changed.ok());
    if (*changed) {
      if (update.kind == UpdateKind::kInsert) {
        maintainer.ApplyInsert(update.tuple, &g);
      } else {
        maintainer.ApplyDelete(update.tuple, &g);
      }
    }
    EXPECT_EQ(g.Edges(), BuildGaifmanGraph(a).Edges()) << "step " << step;
  }
}

TEST(GaifmanMaintainer, SharedPairAcrossTuplesKeepsEdgeUntilLastWitness) {
  // {0,1} is witnessed by both E(0,1) and E(1,0) (the symmetric encoding):
  // deleting one tuple must keep the Gaifman edge, deleting both removes it.
  Structure a = EncodeGraph(MakePath(2));
  Graph g = BuildGaifmanGraph(a);
  GaifmanMaintainer maintainer(a);
  EXPECT_TRUE(a.DeleteTuple(0, {0, 1}));
  GaifmanDelta d1 = maintainer.ApplyDelete({0, 1}, &g);
  EXPECT_TRUE(d1.removed.empty());
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(a.DeleteTuple(0, {1, 0}));
  GaifmanDelta d2 = maintainer.ApplyDelete({1, 0}, &g);
  ASSERT_EQ(d2.removed.size(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(UpdateParse, RoundTripsAndRejectsMalformedSpecs) {
  Signature sig({{"E", 2}, {"R", 1}, {"Q", 0}});
  for (const char* spec : {"insert E 0 1", "delete R 3", "insert Q"}) {
    Result<TupleUpdate> u = ParseUpdate(spec, sig);
    ASSERT_TRUE(u.ok()) << spec;
    EXPECT_EQ(UpdateToString(*u, sig), spec);
  }
  EXPECT_EQ(ParseUpdate("frobnicate E 0 1", sig).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseUpdate("insert X 0", sig).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ParseUpdate("insert E 0", sig).status().code(),
            StatusCode::kInvalidArgument);  // arity mismatch
  EXPECT_EQ(ParseUpdate("insert E 0 banana", sig).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseUpdate("", sig).status().code(),
            StatusCode::kInvalidArgument);
}

// The locality guarantee the ISSUE pins down: one tuple update against a
// cached exact cover repairs only the clusters whose r-neighbourhood
// intersects the updated tuple's ball — asserted via cover.clusters.rebuilt.
TEST(ApplyUpdate, SingleInsertRepairsOnlyTouchedClusters) {
  Structure a = EncodeGraph(MakePath(200));
  EvalContext ctx(a);
  ctx.Cover(1, CoverBackend::kExact);

  MetricsSink sink;
  ArtifactOptions opts;
  opts.metrics = &sink;
  // Append a chord near one end: only vertices within distance 1 of {5, 7}
  // in the old or new graph can see their 1-ball change.
  Result<UpdateStats> stats =
      ctx.ApplyUpdate(&a, Insert(0, {5, 7}), opts);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->changed);
  EXPECT_EQ(stats->edges_added, 1);
  // N_1({5,7}) in old ∪ new graph = {4,5,6,7,8}: exactly 5 clusters rebuilt
  // out of 200.
  EXPECT_EQ(stats->clusters_rebuilt, 5);
  EvalMetrics m = sink.Snapshot();
  EXPECT_EQ(m.counters["cover.clusters.rebuilt"], 5);
  EXPECT_EQ(m.counters["update.gaifman.edges_added"], 1);
  EXPECT_EQ(m.counters["update.inserts"], 1);

  // The repaired cover must be bit-identical to a cold rebuild.
  const NeighborhoodCover& repaired = ctx.Cover(1, CoverBackend::kExact);
  Graph rebuilt_graph = BuildGaifmanGraph(a);
  NeighborhoodCover rebuilt = ExactBallCover(rebuilt_graph, 1);
  EXPECT_EQ(repaired.clusters, rebuilt.clusters);
  EXPECT_EQ(repaired.assignment, rebuilt.assignment);
  EXPECT_EQ(repaired.centers, rebuilt.centers);
}

TEST(ApplyUpdate, SingleDeleteRepairsOnlyTouchedClustersAndMatchesRebuild) {
  Structure a = EncodeGraph(MakeCycle(100));
  EvalContext ctx(a);
  ctx.Cover(2, CoverBackend::kExact);
  // The symmetric encoding stores both orientations; remove both so the
  // Gaifman edge {10, 11} actually disappears.
  ASSERT_TRUE(ctx.ApplyUpdate(&a, Delete(0, {10, 11}))->changed);
  Result<UpdateStats> stats = ctx.ApplyUpdate(&a, Delete(0, {11, 10}));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->edges_removed, 1);
  // Affected vertices: within distance 2 of {10, 11} in the old graph
  // (8..13) — the cycle is long enough that old ∪ new adds nothing.
  EXPECT_EQ(stats->clusters_rebuilt, 6);
  Graph rebuilt_graph = BuildGaifmanGraph(a);
  NeighborhoodCover rebuilt = ExactBallCover(rebuilt_graph, 2);
  const NeighborhoodCover& repaired = ctx.Cover(2, CoverBackend::kExact);
  EXPECT_EQ(repaired.clusters, rebuilt.clusters);
}

TEST(ApplyUpdate, SparseCoverStaysValidUnderUpdates) {
  Rng rng(3);
  Structure a = EncodeGraph(MakeRandomBoundedDegree(80, 3, &rng));
  EvalContext ctx(a);
  ctx.Cover(1, CoverBackend::kSparse);
  for (int step = 0; step < 40; ++step) {
    ElemId u = static_cast<ElemId>(rng.NextBelow(a.universe_size()));
    ElemId v = static_cast<ElemId>(rng.NextBelow(a.universe_size()));
    TupleUpdate update =
        rng.NextBool(0.5) ? Insert(0, {u, v}) : Delete(0, {u, v});
    ASSERT_TRUE(ctx.ApplyUpdate(&a, update).ok());
    // The repaired cover need not match a greedy rebuild bit-for-bit, but it
    // must still be a valid (r, 2r)-cover of the *current* Gaifman graph
    // (CheckCoverInvariants aborts on violation).
    auto it_cover = ctx.Cover(1, CoverBackend::kSparse);
    CheckCoverInvariants(BuildGaifmanGraph(a), it_cover);
  }
}

TEST(ApplyUpdate, SphereRepairYieldsRebuildEquivalentPartition) {
  Structure a = PathWithReds(60, 21);
  EvalContext ctx(a);
  ctx.SphereTypes(1);
  const SymbolId red = *a.signature().Find("R");
  ASSERT_TRUE(ctx.ApplyUpdate(&a, Insert(0, {12, 30}))->changed);
  ASSERT_TRUE(ctx.ApplyUpdate(&a, Insert(red, {45})).ok());
  ASSERT_TRUE(ctx.ApplyUpdate(&a, Delete(0, {12, 30})).ok());

  const SphereTypeAssignment& repaired = ctx.SphereTypes(1);
  Graph g = BuildGaifmanGraph(a);
  SphereTypeAssignment rebuilt = ComputeSphereTypes(a, g, 1);
  ASSERT_EQ(repaired.type_of.size(), rebuilt.type_of.size());
  // Type ids may be numbered differently (the repaired registry only grows),
  // but the induced partition must be identical: two elements share a type
  // after repair iff they share one after a cold rebuild.
  for (ElemId x = 0; x < a.universe_size(); ++x) {
    for (ElemId y = x + 1; y < a.universe_size(); ++y) {
      EXPECT_EQ(repaired.type_of[x] == repaired.type_of[y],
                rebuilt.type_of[x] == rebuilt.type_of[y])
          << "elements " << x << ", " << y;
    }
  }
}

TEST(ApplyUpdate, NoopUpdateLeavesCachesUntouched) {
  Structure a = EncodeGraph(MakePath(20));
  EvalContext ctx(a);
  ctx.Cover(1, CoverBackend::kExact);
  MetricsSink sink;
  ArtifactOptions opts;
  opts.metrics = &sink;
  // E(0,1) already holds: inserting it again must change nothing.
  Result<UpdateStats> stats = ctx.ApplyUpdate(&a, Insert(0, {0, 1}), opts);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->changed);
  EXPECT_EQ(stats->clusters_rebuilt, 0);
  EvalMetrics m = sink.Snapshot();
  EXPECT_EQ(m.counters["update.noops"], 1);
  EXPECT_EQ(m.counters.count("update.repairs"), 0u);
}

TEST(ApplyUpdate, SelfLoopTupleAddsNoGaifmanEdges) {
  Structure a = EncodeGraph(MakePath(10));
  EvalContext ctx(a);
  ctx.Cover(1, CoverBackend::kExact);
  Result<UpdateStats> stats = ctx.ApplyUpdate(&a, Insert(0, {4, 4}));
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->changed);  // the tuple is new ...
  EXPECT_EQ(stats->edges_added, 0);  // ... but Gaifman ignores self-loops
  EXPECT_EQ(stats->clusters_rebuilt, 0);
  const NeighborhoodCover& repaired = ctx.Cover(1, CoverBackend::kExact);
  NeighborhoodCover rebuilt = ExactBallCover(BuildGaifmanGraph(a), 1);
  EXPECT_EQ(repaired.clusters, rebuilt.clusters);
}

TEST(ApplyUpdate, EmptyStructureGrowsFromNothing) {
  Structure a(Signature({{"E", 2}}), 3);  // no tuples at all
  EvalContext ctx(a);
  ctx.Cover(1, CoverBackend::kExact);
  ctx.SphereTypes(1);
  Result<UpdateStats> stats = ctx.ApplyUpdate(&a, Insert(0, {0, 2}));
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->changed);
  EXPECT_EQ(stats->edges_added, 1);
  NeighborhoodCover rebuilt = ExactBallCover(BuildGaifmanGraph(a), 1);
  EXPECT_EQ(ctx.Cover(1, CoverBackend::kExact).clusters, rebuilt.clusters);
}

TEST(ApplyUpdate, NullaryUpdateDropsSphereEntriesButKeepsCovers) {
  Structure a = EncodeGraph(MakePath(12));
  a.AddNullarySymbol("Q", false);
  const SymbolId q = *a.signature().Find("Q");
  EvalContext ctx(a);
  const NeighborhoodCover& cover = ctx.Cover(1, CoverBackend::kExact);
  ctx.SphereTypes(1);
  MetricsSink sink;
  ArtifactOptions opts;
  opts.metrics = &sink;
  Result<UpdateStats> stats = ctx.ApplyUpdate(&a, Insert(q, {}), opts);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->changed);
  EXPECT_EQ(stats->artifacts_invalidated, 1);
  EXPECT_EQ(sink.Snapshot().counters["cache.invalidated.spheres"], 1);
  // Covers survive (nullary facts never touch the Gaifman graph) — the
  // reference is still the same object.
  EXPECT_EQ(&cover, &ctx.Cover(1, CoverBackend::kExact));
  // The re-built sphere entry reflects the new nullary fact.
  const SphereTypeAssignment& fresh = ctx.SphereTypes(1);
  SphereTypeAssignment rebuilt = ComputeSphereTypes(a, BuildGaifmanGraph(a), 1);
  EXPECT_EQ(fresh.type_of, rebuilt.type_of);
}

TEST(ApplyUpdate, ValidationFailuresLeaveEverythingUntouched) {
  Structure a = EncodeGraph(MakePath(5));
  EvalContext ctx(a);
  ctx.Cover(1, CoverBackend::kExact);
  EXPECT_EQ(ctx.ApplyUpdate(&a, Insert(7, {0, 1})).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ctx.ApplyUpdate(&a, Insert(0, {0})).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ctx.ApplyUpdate(&a, Insert(0, {0, 99})).status().code(),
            StatusCode::kOutOfRange);
  Structure other = EncodeGraph(MakePath(5));
  EXPECT_EQ(ctx.ApplyUpdate(&other, Insert(0, {0, 1})).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(a.relation(0).NumTuples(), 8u);  // 4 path edges, both orientations
}

TEST(Session, ReadOnlySessionRejectsUpdates) {
  Structure a = EncodeGraph(MakePath(5));
  Session session(static_cast<const Structure&>(a));
  EXPECT_EQ(session.ApplyUpdate(Insert(0, {0, 2})).status().code(),
            StatusCode::kUnsupported);
}

// The headline correctness bar: after any update sequence, warm incremental
// answers are bit-identical to a cold rebuild for every engine and thread
// count (0 = all hardware threads, 1 = serial, 4 = fixed fan-out).
TEST(Session, IncrementalAnswersMatchColdRebuildAcrossThreadCounts) {
  const Formula condition =
      *ParseFormula("@ge1(#(y). (E(x, y) & R(y)) - 1)");
  std::vector<TupleUpdate> script;
  {
    Structure probe = PathWithReds(40, 5);
    const SymbolId red = *probe.signature().Find("R");
    script = {Insert(0, {3, 17}),  Insert(0, {17, 3}), Delete(0, {8, 9}),
              Insert(red, {12}),   Delete(0, {9, 8}),  Delete(red, {12}),
              Insert(0, {20, 22}), Insert(0, {22, 20})};
  }
  for (int threads : {0, 1, 4}) {
    for (TermEngine term_engine :
         {TermEngine::kBall, TermEngine::kSparseCover,
          TermEngine::kExactCover}) {
      Structure live = PathWithReds(40, 5);
      EvalOptions options;
      options.term_engine = term_engine;
      options.num_threads = threads;
      Session session(&live, options);
      ASSERT_TRUE(session.CountSolutions(condition).ok());  // prime the cache
      Structure cold_copy = PathWithReds(40, 5);
      for (const TupleUpdate& u : script) {
        Result<UpdateStats> applied = session.ApplyUpdate(u);
        ASSERT_TRUE(applied.ok());
        Result<bool> mirrored = ApplyToStructure(&cold_copy, u);
        ASSERT_TRUE(mirrored.ok());
        EXPECT_EQ(applied->changed, *mirrored);
        Result<CountInt> warm = session.CountSolutions(condition);
        EvalOptions cold_options = options;
        cold_options.engine = Engine::kNaive;
        Result<CountInt> cold = CountSolutions(condition, cold_copy,
                                               cold_options);
        ASSERT_TRUE(warm.ok());
        ASSERT_TRUE(cold.ok());
        EXPECT_EQ(*warm, *cold)
            << "threads=" << threads
            << " update=" << UpdateToString(u, live.signature());
      }
    }
  }
}

}  // namespace
}  // namespace focq
