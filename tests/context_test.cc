// The cross-query artifact cache: EvalContext keying/laziness, the
// one-Gaifman-build-per-query guarantee, Session/EvaluateQueries batch
// amortisation, and the cold-vs-warm bit-identity contract.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "focq/core/api.h"
#include "focq/core/removal_engine.h"
#include "focq/eval/naive_eval.h"
#include "focq/graph/generators.h"
#include "focq/hanf/hanf_eval.h"
#include "focq/logic/build.h"
#include "focq/logic/parser.h"
#include "focq/structure/encode.h"
#include "focq/structure/gaifman.h"
#include "focq/util/rng.h"

namespace focq {
namespace {

Structure PathWithReds(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Structure a = EncodeGraph(MakePath(n));
  std::vector<ElemId> reds;
  for (ElemId e = 0; e < a.universe_size(); ++e) {
    if (rng.NextBool(0.4)) reds.push_back(e);
  }
  a.AddUnarySymbol("R", reds);
  return a;
}

Foc1Query DegreeQuery() {
  // Unary query with two head terms: the shape that used to build one
  // Gaifman graph per plan execution (condition + each head term).
  Foc1Query q;
  q.head_vars = {VarNamed("x")};
  q.condition = *ParseFormula("@ge1(#(y). (E(x, y)) - 1)");
  q.head_terms = {*ParseTerm("#(y). (E(x, y))"),
                  *ParseTerm("#(y). (dist(y, x) <= 2)")};
  return q;
}

TEST(EvalContext, ArtifactsAreCachedByKeyWithStableReferences) {
  Structure a = PathWithReds(40, 7);
  EvalContext ctx(a);
  EXPECT_EQ(&ctx.structure(), &a);

  const Graph& g1 = ctx.Gaifman();
  const Graph& g2 = ctx.Gaifman();
  EXPECT_EQ(&g1, &g2);
  EXPECT_EQ(g1.num_vertices(), a.universe_size());

  const NeighborhoodCover& sparse1 = ctx.Cover(1, CoverBackend::kSparse);
  const NeighborhoodCover& exact1 = ctx.Cover(1, CoverBackend::kExact);
  const NeighborhoodCover& sparse2 = ctx.Cover(2, CoverBackend::kSparse);
  EXPECT_NE(&sparse1, &exact1);  // backend is part of the key
  EXPECT_NE(&sparse1, &sparse2);  // radius is part of the key
  EXPECT_EQ(&sparse1, &ctx.Cover(1, CoverBackend::kSparse));
  EXPECT_EQ(&exact1, &ctx.Cover(1, CoverBackend::kExact));

  const SphereTypeAssignment& t1 = ctx.SphereTypes(1);
  EXPECT_EQ(&t1, &ctx.SphereTypes(1));
  EXPECT_NE(&t1, &ctx.SphereTypes(2));

  EvalContext::CacheStats stats = ctx.cache_stats();
  // 1 graph + 3 covers + 2 typings built; the four repeat lookups above hit
  // (internal Gaifman reuse by the cover/sphere builders records no hits).
  EXPECT_EQ(stats.misses, 6);
  EXPECT_EQ(stats.hits, 4);
  EXPECT_GT(stats.bytes, 0);
}

TEST(EvalContext, CacheCountersReachTheSink) {
  Structure a = PathWithReds(30, 9);
  EvalContext ctx(a);
  MetricsSink sink;
  ArtifactOptions opts;
  opts.metrics = &sink;
  ctx.Cover(1, CoverBackend::kSparse, opts);
  ctx.Cover(1, CoverBackend::kSparse, opts);
  // First call: graph + cover misses; second: one hit.
  EXPECT_EQ(sink.Counter("ctx.cache.misses"), 2);
  EXPECT_EQ(sink.Counter("ctx.cache.hits"), 1);
  EXPECT_EQ(sink.Counter("gaifman.builds"), 1);
  EXPECT_EQ(sink.Counter("cover.builds"), 1);
  EXPECT_EQ(sink.Counter("ctx.cache.bytes"), ctx.cache_stats().bytes);
}

TEST(EvalContext, OneQueryTriggersExactlyOneGaifmanBuild) {
  Structure a = PathWithReds(30, 11);
  Foc1Query q = DegreeQuery();
  MetricsSink sink;
  EvalOptions options;
  options.metrics = &sink;
  Result<QueryResult> r = EvaluateQuery(q, a, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Condition plus two head-term executions share one query-local context:
  // the graph is built once, not once per plan.
  EXPECT_EQ(sink.Counter("gaifman.builds"), 1);
}

TEST(EvalContext, MultiHeadQueryAlsoBuildsOnce) {
  Structure a = PathWithReds(20, 13);
  Foc1Query q;
  q.head_vars = {VarNamed("x"), VarNamed("y")};
  q.condition = *ParseFormula("E(x, y)");
  q.head_terms = {*ParseTerm("#(z). (E(x, z))")};
  MetricsSink sink;
  EvalOptions options;
  options.metrics = &sink;
  Result<QueryResult> r = EvaluateQuery(q, a, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(sink.Counter("gaifman.builds"), 1);
}

TEST(Session, WarmResultsAreBitIdenticalToColdForEveryVariant) {
  Structure a = PathWithReds(36, 17);
  Foc1Query q = DegreeQuery();
  for (TermEngine term_engine : {TermEngine::kBall, TermEngine::kSparseCover,
                                 TermEngine::kExactCover}) {
    for (int threads : {0, 1, 4}) {
      EvalOptions options;
      options.term_engine = term_engine;
      options.num_threads = threads;
      Result<QueryResult> cold = EvaluateQuery(q, a, options);
      ASSERT_TRUE(cold.ok()) << cold.status().ToString();

      Session session(a, options);
      Result<QueryResult> first = session.EvaluateQuery(q);
      Result<QueryResult> warm = session.EvaluateQuery(q);
      ASSERT_TRUE(first.ok() && warm.ok());
      EXPECT_EQ(cold->rows, first->rows);
      EXPECT_EQ(cold->rows, warm->rows);
      EXPECT_GT(session.context().cache_stats().hits, 0);
    }
  }
}

TEST(Session, BatchPaysForEachArtifactOnce) {
  Structure a = PathWithReds(36, 19);
  MetricsSink sink;
  EvalOptions options;
  options.term_engine = TermEngine::kSparseCover;
  options.metrics = &sink;
  Session session(a, options);

  Foc1Query q = DegreeQuery();
  ASSERT_TRUE(session.EvaluateQuery(q).ok());
  std::int64_t gaifman_builds = sink.Counter("gaifman.builds");
  std::int64_t cover_builds = sink.Counter("cover.builds");
  EXPECT_EQ(gaifman_builds, 1);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(session.EvaluateQuery(q).ok());
  }
  // Warm queries rebuild nothing: the build counters are flat.
  EXPECT_EQ(sink.Counter("gaifman.builds"), gaifman_builds);
  EXPECT_EQ(sink.Counter("cover.builds"), cover_builds);
  EXPECT_GT(session.context().cache_stats().hits, 0);
}

TEST(EvaluateQueries, BatchSharesOneContextAndMatchesPerQueryResults) {
  Structure a = PathWithReds(28, 23);
  std::vector<Foc1Query> queries;
  queries.push_back(DegreeQuery());
  {
    Foc1Query q;
    q.condition = *ParseFormula("exists x. (R(x))");
    q.head_terms = {*ParseTerm("#(x). (R(x))")};
    queries.push_back(q);
  }
  queries.push_back(DegreeQuery());

  MetricsSink sink;
  EvalOptions options;
  options.term_engine = TermEngine::kSparseCover;
  options.metrics = &sink;
  std::vector<Result<QueryResult>> batch = EvaluateQueries(queries, a, options);
  ASSERT_EQ(batch.size(), queries.size());
  EXPECT_EQ(sink.Counter("gaifman.builds"), 1);

  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << batch[i].status().ToString();
    Result<QueryResult> solo = EvaluateQuery(queries[i], a, {});
    ASSERT_TRUE(solo.ok());
    EXPECT_EQ(batch[i]->rows, solo->rows) << "query " << i;
  }
}

TEST(HanfEvaluator, SphereTypeProviderMatchesRecompute) {
  Structure a = PathWithReds(50, 29);
  Graph gaifman = BuildGaifmanGraph(a);
  EvalContext ctx(a);
  Var x = VarNamed("x");
  Formula phi = Atom("R", {x});

  HanfEvaluator plain(a, gaifman);
  Result<CountInt> expected = plain.CountSatisfying(phi, x, 2);
  ASSERT_TRUE(expected.ok());

  MetricsSink sink;
  HanfEvaluator cached(a, gaifman, /*num_threads=*/1, &sink);
  cached.set_sphere_type_provider(
      [&ctx](std::uint32_t r) -> const SphereTypeAssignment& {
        return ctx.SphereTypes(r);
      });
  Result<CountInt> first = cached.CountSatisfying(phi, x, 2);
  Result<CountInt> second = cached.CountSatisfying(phi, x, 2);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(*first, *expected);
  EXPECT_EQ(*second, *expected);
  // First use builds the graph and the typing; the second is served warm.
  EXPECT_EQ(ctx.cache_stats().misses, 2);
  EXPECT_EQ(ctx.cache_stats().hits, 1);
  // Per-use counters are recorded on every evaluation, cached or not.
  EXPECT_EQ(sink.Counter("hanf.typings"), 2);
}

TEST(RemovalEngine, TopLevelCoverCanComeFromASharedContext) {
  Structure a = EncodeGraph(MakePath(60));
  Graph gaifman = BuildGaifmanGraph(a);
  Var y1 = VarNamed("rcy1"), y2 = VarNamed("rcy2");
  PatternGraph edge(2, 0);
  edge.SetEdge(0, 1);
  BasicClTerm basic{{y1, y2}, true, Atom("E", {y1, y2}), 0, edge};

  Result<std::vector<CountInt>> expected =
      EvaluateBasicWithRemoval(a, gaifman, basic);
  ASSERT_TRUE(expected.ok());

  EvalContext ctx(a);
  RemovalEngineOptions options;
  options.base_size = 8;
  options.context = &ctx;
  Result<std::vector<CountInt>> first =
      EvaluateBasicWithRemoval(a, gaifman, basic, options);
  Result<std::vector<CountInt>> second =
      EvaluateBasicWithRemoval(a, gaifman, basic, options);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(*first, *expected);
  EXPECT_EQ(*second, *expected);
  // The second evaluation reuses the top-level cover.
  EXPECT_GT(ctx.cache_stats().hits, 0);
}

}  // namespace
}  // namespace focq
