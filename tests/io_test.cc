#include <gtest/gtest.h>

#include "focq/structure/incidence.h"
#include "focq/structure/io.h"

namespace focq {
namespace {

constexpr const char* kSample = R"(
# a small database
universe 5
relation E 2
0 1
1 2   # trailing comment
relation R 1
3
relation Z 0
()
)";

TEST(StructureIo, ReadBasics) {
  Result<Structure> a = ReadStructure(kSample);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->universe_size(), 5u);
  EXPECT_EQ(a->signature().NumSymbols(), 3u);
  EXPECT_TRUE(a->Holds(*a->signature().Find("E"), {0, 1}));
  EXPECT_TRUE(a->Holds(*a->signature().Find("E"), {1, 2}));
  EXPECT_FALSE(a->Holds(*a->signature().Find("E"), {1, 0}));
  EXPECT_TRUE(a->Holds(*a->signature().Find("R"), {3}));
  EXPECT_TRUE(a->NullaryHolds(*a->signature().Find("Z")));
}

TEST(StructureIo, RoundTrip) {
  Result<Structure> a = ReadStructure(kSample);
  ASSERT_TRUE(a.ok());
  std::string serialized = WriteStructure(*a);
  Result<Structure> b = ReadStructure(serialized);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(WriteStructure(*b), serialized);
  EXPECT_EQ(b->universe_size(), a->universe_size());
  for (SymbolId id = 0; id < a->signature().NumSymbols(); ++id) {
    EXPECT_EQ(b->relation(id).NumTuples(), a->relation(id).NumTuples());
  }
}

TEST(StructureIo, Errors) {
  EXPECT_FALSE(ReadStructure("relation E 2\n0 1\n").ok());  // no universe
  EXPECT_FALSE(ReadStructure("universe 0\n").ok());
  EXPECT_FALSE(ReadStructure("universe 3\nuniverse 3\n").ok());
  EXPECT_FALSE(ReadStructure("universe 3\nrelation E 2\n0 7\n").ok());
  EXPECT_FALSE(ReadStructure("universe 3\nrelation E 2\n0\n").ok());
  EXPECT_FALSE(ReadStructure("universe 3\n0 1\n").ok());  // tuple w/o relation
  EXPECT_FALSE(
      ReadStructure("universe 3\nrelation E 2\nrelation E 2\n").ok());
  EXPECT_FALSE(ReadStructure("universe 3\nrelation E 2\n()\n").ok());
}

TEST(StructureIo, EdgeList) {
  Result<Structure> a = ReadEdgeList("0 1\n1 2\n# comment\n2 0\n");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->universe_size(), 3u);
  SymbolId e = *a->signature().Find("E");
  EXPECT_TRUE(a->Holds(e, {0, 1}));
  EXPECT_TRUE(a->Holds(e, {1, 0}));  // symmetric encoding
  EXPECT_EQ(a->relation(e).NumTuples(), 6u);
  EXPECT_FALSE(ReadEdgeList("0 -1\n").ok());
  EXPECT_FALSE(ReadEdgeList("").ok());
  Result<Structure> padded = ReadEdgeList("0 1\n", /*min_vertices=*/10);
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(padded->universe_size(), 10u);
}

TEST(Incidence, FastInducedMatchesSlow) {
  Result<Structure> a = ReadStructure(kSample);
  ASSERT_TRUE(a.ok());
  TupleIncidence incidence(*a);
  std::vector<ElemId> members = {0, 1, 3};
  SubstructureView fast = InducedViewFast(incidence, members);
  SubstructureView slow = InducedView(*a, members);
  EXPECT_EQ(WriteStructure(fast.structure), WriteStructure(slow.structure));
  // Nullary relations survive the fast path even without incidence.
  EXPECT_TRUE(fast.structure.NullaryHolds(*a->signature().Find("Z")));
}

TEST(Incidence, TupleListedOncePerElement) {
  Structure a(Signature({{"T", 3}}), 3);
  a.AddTuple(0, {1, 1, 2});
  TupleIncidence incidence(a);
  EXPECT_EQ(incidence.Of(1).size(), 1u);  // despite two occurrences
  EXPECT_EQ(incidence.Of(2).size(), 1u);
  EXPECT_TRUE(incidence.Of(0).empty());
}

}  // namespace
}  // namespace focq
