#include <gtest/gtest.h>

#include "focq/graph/generators.h"
#include "focq/structure/encode.h"
#include "focq/structure/gaifman.h"
#include "focq/structure/neighborhood.h"
#include "focq/structure/signature.h"
#include "focq/structure/structure.h"

namespace focq {
namespace {

TEST(Signature, Basics) {
  Signature sig({{"E", 2}, {"R", 1}, {"Z", 0}});
  EXPECT_EQ(sig.NumSymbols(), 3u);
  EXPECT_EQ(sig.Arity(0), 2);
  EXPECT_EQ(sig.Name(2), "Z");
  EXPECT_EQ(sig.SizeNorm(), 3u);
  EXPECT_TRUE(sig.Find("R").has_value());
  EXPECT_FALSE(sig.Find("Q").has_value());
  EXPECT_EQ(sig.FreshName("E"), "E#1");
  EXPECT_EQ(sig.FreshName("Q"), "Q");
}

TEST(Signature, PrefixRelation) {
  Signature a({{"E", 2}});
  Signature b({{"E", 2}, {"R", 1}});
  EXPECT_TRUE(a.IsPrefixOf(b));
  EXPECT_FALSE(b.IsPrefixOf(a));
  Signature c({{"E", 3}});
  EXPECT_FALSE(c.IsPrefixOf(b));
}

TEST(Structure, TuplesAndLookup) {
  Structure a(Signature({{"E", 2}, {"R", 1}}), 4);
  a.AddTuple(0, {0, 1});
  a.AddTuple(0, {0, 1});  // duplicate ignored
  a.AddTuple(0, {1, 2});
  a.AddTuple(1, {3});
  EXPECT_EQ(a.relation(0).NumTuples(), 2u);
  EXPECT_TRUE(a.Holds(0, {0, 1}));
  EXPECT_FALSE(a.Holds(0, {1, 0}));
  EXPECT_EQ(a.Order(), 4u);
  EXPECT_EQ(a.SizeNorm(), 7u);
}

TEST(Structure, NullaryRelations) {
  Structure a(Signature({{"Z", 0}}), 2);
  EXPECT_FALSE(a.NullaryHolds(0));
  a.AddTuple(0, {});
  EXPECT_TRUE(a.NullaryHolds(0));
}

TEST(Structure, ExpansionAndReduct) {
  Structure a(Signature({{"E", 2}}), 3);
  a.AddTuple(0, {0, 1});
  SymbolId u = a.AddUnarySymbol("U", {0, 2});
  SymbolId z = a.AddNullarySymbol("Z", true);
  EXPECT_TRUE(a.Holds(u, {2}));
  EXPECT_TRUE(a.NullaryHolds(z));
  Structure reduct = a.ReductTo(1);
  EXPECT_EQ(reduct.signature().NumSymbols(), 1u);
  EXPECT_TRUE(reduct.Holds(0, {0, 1}));
}

TEST(Structure, Induced) {
  Structure a(Signature({{"E", 2}}), 5);
  a.AddTuple(0, {0, 1});
  a.AddTuple(0, {1, 4});
  a.AddTuple(0, {2, 3});
  Structure sub = a.Induced({1, 2, 4});
  EXPECT_EQ(sub.universe_size(), 3u);
  EXPECT_TRUE(sub.Holds(0, {0, 2}));   // 1 -> 0, 4 -> 2
  EXPECT_FALSE(sub.Holds(0, {1, 2}));  // 2-3 tuple dropped (3 missing)
  EXPECT_EQ(sub.relation(0).NumTuples(), 1u);
}

TEST(Structure, DisjointUnion) {
  Structure a(Signature({{"E", 2}}), 2);
  a.AddTuple(0, {0, 1});
  Structure b(Signature({{"E", 2}}), 3);
  b.AddTuple(0, {0, 2});
  Structure u = Structure::DisjointUnion(a, b);
  EXPECT_EQ(u.universe_size(), 5u);
  EXPECT_TRUE(u.Holds(0, {0, 1}));
  EXPECT_TRUE(u.Holds(0, {2, 4}));
  EXPECT_EQ(u.relation(0).NumTuples(), 2u);
}

TEST(Gaifman, EdgesFromTuples) {
  Structure a(Signature({{"T", 3}}), 5);
  a.AddTuple(0, {0, 1, 2});
  a.AddTuple(0, {3, 3, 3});  // no edges from repeated elements
  Graph g = BuildGaifmanGraph(a);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_EQ(g.Degree(3), 0u);
  EXPECT_EQ(g.Degree(4), 0u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Gaifman, GraphEncodingRoundTrip) {
  Graph g = MakeCycle(7);
  Structure a = EncodeGraph(g);
  Graph back = BuildGaifmanGraph(a);
  EXPECT_EQ(back.num_edges(), g.num_edges());
  for (auto [u, v] : g.Edges()) EXPECT_TRUE(back.HasEdge(u, v));
}

TEST(Neighborhood, BallSubstructure) {
  Structure a = EncodeGraph(MakePath(10));
  Graph gaifman = BuildGaifmanGraph(a);
  SubstructureView view = NeighborhoodSubstructure(a, gaifman, {5}, 2);
  EXPECT_EQ(view.structure.universe_size(), 5u);  // 3,4,5,6,7
  EXPECT_EQ(view.original_ids, (std::vector<ElemId>{3, 4, 5, 6, 7}));
  EXPECT_EQ(view.ToLocal(5), 2u);
  // Edges inside the ball survive, with renumbering.
  EXPECT_TRUE(view.structure.Holds(0, {0, 1}));  // 3-4
  EXPECT_TRUE(view.structure.Holds(0, {1, 0}));
}

TEST(Encode, StringStructure) {
  Structure s = EncodeString("abca", "abc");
  EXPECT_EQ(s.universe_size(), 4u);
  SymbolId order = *s.signature().Find("<=");
  SymbolId pa = *s.signature().Find("P_a");
  EXPECT_TRUE(s.Holds(order, {0, 3}));
  EXPECT_TRUE(s.Holds(order, {2, 2}));
  EXPECT_FALSE(s.Holds(order, {3, 0}));
  EXPECT_TRUE(s.Holds(pa, {0}));
  EXPECT_TRUE(s.Holds(pa, {3}));
  EXPECT_FALSE(s.Holds(pa, {1}));
  // The Gaifman graph of a string with a linear order is a clique.
  Graph g = BuildGaifmanGraph(s);
  EXPECT_EQ(g.num_edges(), 6u);
}

TEST(Encode, Digraph) {
  Structure d = EncodeDigraph(3, {{0, 1}, {1, 2}});
  EXPECT_TRUE(d.Holds(0, {0, 1}));
  EXPECT_FALSE(d.Holds(0, {1, 0}));
}

}  // namespace
}  // namespace focq
