#include <gtest/gtest.h>

#include "focq/eval/naive_eval.h"
#include "focq/graph/generators.h"
#include "focq/locality/independence.h"
#include "focq/logic/build.h"
#include "focq/structure/encode.h"
#include "focq/structure/gaifman.h"
#include "test_util.h"

namespace focq {
namespace {

TEST(Independence, ScatteredRedsOnAPath) {
  // Path of 9 vertices, reds at 0, 4, 8 (pairwise distance 4).
  Structure a = EncodeGraph(MakePath(9));
  a.AddUnarySymbol("R", {0, 4, 8});
  NaiveEvaluator naive(a);
  Var x = VarNamed("inx");
  for (int k = 1; k <= 4; ++k) {
    for (std::uint32_t r : {1u, 3u, 4u}) {
      IndependenceSentence s =
          MakeIndependenceSentence(k, r, x, Atom("R", {x}));
      bool expected = naive.Satisfies(s.ToFormula());
      // Ground truth by hand: 3 reds pairwise 4 apart.
      bool by_hand = (k == 1) || (k == 2 && r <= 7) || (k == 3 && r <= 3) ||
                     (k >= 4 ? false : false);
      if (k == 2) by_hand = r < 4 || r <= 7;  // dist > r needs r < ...
      // Simplify: just trust the naive engine; check a couple of pinned
      // cases explicitly below.
      (void)by_hand;
      // Theorem 6.8 route: the witness-count cl-term.
      Result<Decomposition> d = s.WitnessCountTerm();
      ASSERT_TRUE(d.ok()) << d.status().ToString();
      Graph g = BuildGaifmanGraph(a);
      ClTermBallEvaluator ball(a, g);
      Result<CountInt> count = ball.EvaluateGround(d->term);
      ASSERT_TRUE(count.ok());
      EXPECT_EQ(*count >= 1, expected) << "k=" << k << " r=" << r;
    }
  }
  // Pinned cases: three reds pairwise distance 4.
  IndependenceSentence s3 =
      MakeIndependenceSentence(3, 3, x, Atom("R", {x}));
  EXPECT_TRUE(naive.Satisfies(s3.ToFormula()));
  IndependenceSentence s3_too_far =
      MakeIndependenceSentence(3, 4, x, Atom("R", {x}));
  EXPECT_FALSE(naive.Satisfies(s3_too_far.ToFormula()));
}

TEST(Independence, CountTermMatchesNaiveOnRandomInputs) {
  Rng rng(555);
  Var x = VarNamed("iny");
  for (int round = 0; round < 10; ++round) {
    Structure a = test::RandomColoredStructure(12, 1.3, 0.4, &rng);
    Graph g = BuildGaifmanGraph(a);
    NaiveEvaluator naive(a);
    ClTermBallEvaluator ball(a, g);
    Formula psi = test::RandomQuantifierFree({x}, 2, true, 1, &rng);
    for (int k = 1; k <= 3; ++k) {
      IndependenceSentence s = MakeIndependenceSentence(k, 2, x, psi);
      Result<Decomposition> d = s.WitnessCountTerm();
      ASSERT_TRUE(d.ok()) << d.status().ToString();
      Result<CountInt> count = ball.EvaluateGround(d->term);
      ASSERT_TRUE(count.ok());
      EXPECT_EQ(*count >= 1, naive.Satisfies(s.ToFormula()));
    }
  }
}

TEST(Independence, RecognizerRoundTrip) {
  Var x = VarNamed("inz");
  Formula psi = And(Atom("R", {x}), Not(Eq(x, x)));
  // k = 1 has no separation atoms and is not recognisable (see the
  // rejection test); round-trip starts at k = 2.
  for (int k = 2; k <= 4; ++k) {
    IndependenceSentence s = MakeIndependenceSentence(k, 5, x, psi);
    std::optional<IndependenceSentence> back =
        RecognizeIndependenceSentence(s.ToFormula());
    ASSERT_TRUE(back.has_value()) << k;
    EXPECT_EQ(back->k, k);
    EXPECT_EQ(back->r, 5u);
    ExprRef canon = RenameFreeVar(back->psi.ref(), back->witness_var, x);
    EXPECT_TRUE(ExprEquals(*canon, psi.node()));
  }
}

TEST(Independence, RecognizerRejectsNonShapes) {
  Var x = VarNamed("inw"), y = VarNamed("inv");
  // Not a sentence.
  EXPECT_FALSE(RecognizeIndependenceSentence(Atom("R", {x})).has_value());
  // Missing the separation atom.
  EXPECT_FALSE(RecognizeIndependenceSentence(
                   Exists(x, Exists(y, And(Atom("R", {x}), Atom("R", {y})))))
                   .has_value());
  // Quantified witness property.
  Var z = VarNamed("inu");
  Formula quantified = Exists(
      x, Exists(y, And({Exists(z, Atom("E", {x, z})),
                        Exists(z, Atom("E", {y, z})),
                        Not(DistAtMost(x, y, 2))})));
  EXPECT_FALSE(RecognizeIndependenceSentence(quantified).has_value());
  // Mismatched witness properties.
  Formula mismatched = Exists(
      x, Exists(y, And({Atom("R", {x}), Atom("B", {y}),
                        Not(DistAtMost(x, y, 2))})));
  EXPECT_FALSE(RecognizeIndependenceSentence(mismatched).has_value());
  // k = 1 (no separation atoms) is not recognisable as an independence
  // sentence from the formula alone.
  EXPECT_FALSE(
      RecognizeIndependenceSentence(Exists(x, Atom("R", {x}))).has_value());
}

}  // namespace
}  // namespace focq
