#include <gtest/gtest.h>

#include <set>

#include "focq/eval/naive_eval.h"
#include "focq/graph/generators.h"
#include "focq/locality/removal_rewrite.h"
#include "focq/logic/build.h"
#include "focq/logic/printer.h"
#include "focq/structure/encode.h"
#include "focq/structure/gaifman.h"
#include "focq/structure/removal.h"
#include "test_util.h"

namespace focq {
namespace {

TEST(RemovalStructure, SymbolNaming) {
  EXPECT_EQ(RemovalSymbolName("E", 0), "E~{}");
  EXPECT_EQ(RemovalSymbolName("E", 0b01), "E~{1}");
  EXPECT_EQ(RemovalSymbolName("E", 0b10), "E~{2}");
  EXPECT_EQ(RemovalSymbolName("T", 0b101), "T~{1,3}");
  EXPECT_EQ(DistanceMarkerName(3), "S_3");
}

TEST(RemovalStructure, SignatureShape) {
  Signature sig({{"E", 2}, {"R", 1}});
  RemovalSignature rs = BuildRemovalSignature(sig, 2);
  // E: 4 subsets; R: 2 subsets; plus S_1, S_2.
  EXPECT_EQ(rs.sig.NumSymbols(), 8u);
  EXPECT_EQ(rs.sig.Arity(rs.tilde_ids[0][0b00]), 2);
  EXPECT_EQ(rs.sig.Arity(rs.tilde_ids[0][0b01]), 1);
  EXPECT_EQ(rs.sig.Arity(rs.tilde_ids[0][0b11]), 0);
  EXPECT_EQ(rs.sig.Arity(rs.s_markers[0]), 1);
}

TEST(RemovalStructure, TuplePartitionAndMarkers) {
  // Path 0-1-2-3, remove element 1 at radius 2.
  Structure a = EncodeGraph(MakePath(4));
  Graph gaifman = BuildGaifmanGraph(a);
  RemovalSignature rs = BuildRemovalSignature(a.signature(), 2);
  RemovalResult res = RemoveElement(a, gaifman, 1, 2, rs);
  EXPECT_EQ(res.structure.universe_size(), 3u);
  // Local ids: 0 -> 0, 2 -> 1, 3 -> 2.
  EXPECT_EQ(res.ToLocal(0), 0u);
  EXPECT_EQ(res.ToLocal(2), 1u);
  EXPECT_EQ(res.ToOriginal(2), 3u);
  // Surviving edge tuples (2,3),(3,2) land in E~{}.
  EXPECT_TRUE(res.structure.Holds(rs.tilde_ids[0][0], {1, 2}));
  EXPECT_TRUE(res.structure.Holds(rs.tilde_ids[0][0], {2, 1}));
  EXPECT_FALSE(res.structure.Holds(rs.tilde_ids[0][0], {0, 1}));
  // (1,0) had d at position 1 -> E~{1} gets (0); (0,1) -> E~{2} gets (0).
  EXPECT_TRUE(res.structure.Holds(rs.tilde_ids[0][0b01], {0}));
  EXPECT_TRUE(res.structure.Holds(rs.tilde_ids[0][0b10], {0}));
  EXPECT_TRUE(res.structure.Holds(rs.tilde_ids[0][0b01], {1}));  // from (1,2)
  // Markers: S_1 = {0, 2}; S_2 additionally 3.
  EXPECT_TRUE(res.structure.Holds(rs.s_markers[0], {0}));
  EXPECT_TRUE(res.structure.Holds(rs.s_markers[0], {1}));
  EXPECT_FALSE(res.structure.Holds(rs.s_markers[0], {2}));
  EXPECT_TRUE(res.structure.Holds(rs.s_markers[1], {2}));
}

// Lemma 7.8 property test: A |= phi[a-bar] iff A *r d |= phi~_V[a-bar \ V].
TEST(RemovalRewrite, PreservesFormulas) {
  Rng rng(1200);
  Var x = VarNamed("rwx"), y = VarNamed("rwy");
  for (int round = 0; round < 25; ++round) {
    Structure a = test::RandomColoredStructure(12, 1.4, 0.4, &rng);
    Graph gaifman = BuildGaifmanGraph(a);
    const std::uint32_t r = 4;
    RemovalSignature rs = BuildRemovalSignature(a.signature(), r);
    Formula phi = test::RandomGuardedKernel({x, y}, 3, true, 2, &rng);
    NaiveEvaluator naive(a);
    ElemId d = static_cast<ElemId>(rng.NextBelow(a.universe_size()));
    RemovalResult removed = RemoveElement(a, gaifman, d, r, rs);
    NaiveEvaluator naive_removed(removed.structure);
    for (int trial = 0; trial < 10; ++trial) {
      ElemId ax = static_cast<ElemId>(rng.NextBelow(a.universe_size()));
      ElemId ay = static_cast<ElemId>(rng.NextBelow(a.universe_size()));
      std::set<Var> v;
      std::vector<std::pair<Var, ElemId>> binding;
      if (ax == d) {
        v.insert(x);
      } else {
        binding.emplace_back(x, removed.ToLocal(ax));
      }
      if (ay == d) {
        v.insert(y);
      } else {
        binding.emplace_back(y, removed.ToLocal(ay));
      }
      Result<Formula> rewritten = RemovalRewrite(phi, a.signature(), r, v);
      ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
      EXPECT_EQ(naive.Satisfies(phi, {{x, ax}, {y, ay}}),
                naive_removed.Satisfies(*rewritten, binding))
          << ToString(phi) << " d=" << d << " a=(" << ax << "," << ay << ")";
    }
  }
}

// Also exercise unguarded FO formulas (the lemma does not need guards).
TEST(RemovalRewrite, PreservesUnguardedFormulas) {
  Rng rng(1300);
  Var x = VarNamed("rux2"), y = VarNamed("ruy2");
  Formula phi = Exists(
      y, And(Atom("E", {x, y}),
             Forall(VarNamed("ruz2"),
                    Or(Not(Atom("E", {y, VarNamed("ruz2")})),
                       DistAtMost(x, VarNamed("ruz2"), 2)))));
  for (int round = 0; round < 10; ++round) {
    Structure a = test::RandomGraphStructure(11, 1.5, &rng);
    Graph gaifman = BuildGaifmanGraph(a);
    const std::uint32_t r = 3;
    RemovalSignature rs = BuildRemovalSignature(a.signature(), r);
    NaiveEvaluator naive(a);
    ElemId d = static_cast<ElemId>(rng.NextBelow(a.universe_size()));
    RemovalResult removed = RemoveElement(a, gaifman, d, r, rs);
    NaiveEvaluator naive_removed(removed.structure);
    for (ElemId ax = 0; ax < a.universe_size(); ++ax) {
      std::set<Var> v;
      std::vector<std::pair<Var, ElemId>> binding;
      if (ax == d) {
        v.insert(x);
      } else {
        binding.emplace_back(x, removed.ToLocal(ax));
      }
      Result<Formula> rewritten = RemovalRewrite(phi, a.signature(), r, v);
      ASSERT_TRUE(rewritten.ok());
      EXPECT_EQ(naive.Satisfies(phi, {{x, ax}}),
                naive_removed.Satisfies(*rewritten, binding));
    }
  }
}

// Lemma 7.9(a): ground term decomposition sums to the original value.
TEST(RemovalRewrite, GroundTermDecomposition) {
  Rng rng(1400);
  Var x = VarNamed("rgx"), y = VarNamed("rgy");
  for (int round = 0; round < 15; ++round) {
    Structure a = test::RandomColoredStructure(10, 1.3, 0.4, &rng);
    Graph gaifman = BuildGaifmanGraph(a);
    const std::uint32_t r = 3;
    RemovalSignature rs = BuildRemovalSignature(a.signature(), r);
    Formula phi = test::RandomQuantifierFree({x, y}, 2, true, 2, &rng);
    NaiveEvaluator naive(a);
    CountInt expected = *naive.Evaluate(Count({x, y}, phi));
    ElemId d = static_cast<ElemId>(rng.NextBelow(a.universe_size()));
    RemovalResult removed = RemoveElement(a, gaifman, d, r, rs);
    NaiveEvaluator naive_removed(removed.structure);
    Result<std::vector<RemovalTermPart>> parts =
        RemoveGroundTerm({x, y}, phi, a.signature(), r);
    ASSERT_TRUE(parts.ok());
    CountInt total = 0;
    for (const RemovalTermPart& part : *parts) {
      total += *naive_removed.Evaluate(Count(part.vars, part.body));
    }
    EXPECT_EQ(total, expected) << ToString(phi) << " d=" << d;
  }
}

// Lemma 7.9(b): unary term decomposition, at the removed element and away
// from it.
TEST(RemovalRewrite, UnaryTermDecomposition) {
  Rng rng(1500);
  Var x = VarNamed("rvx"), y = VarNamed("rvy");
  for (int round = 0; round < 15; ++round) {
    Structure a = test::RandomColoredStructure(10, 1.3, 0.4, &rng);
    Graph gaifman = BuildGaifmanGraph(a);
    const std::uint32_t r = 3;
    RemovalSignature rs = BuildRemovalSignature(a.signature(), r);
    Formula phi = test::RandomQuantifierFree({x, y}, 2, true, 2, &rng);
    NaiveEvaluator naive(a);
    Term u = Count({y}, phi);
    ElemId d = static_cast<ElemId>(rng.NextBelow(a.universe_size()));
    RemovalResult removed = RemoveElement(a, gaifman, d, r, rs);
    NaiveEvaluator naive_removed(removed.structure);
    Result<RemovalUnaryParts> parts =
        RemoveUnaryTerm({x, y}, phi, a.signature(), r);
    ASSERT_TRUE(parts.ok());
    // u[d] from the ground parts.
    CountInt at_removed = 0;
    for (const RemovalTermPart& part : parts->at_removed) {
      at_removed += *naive_removed.Evaluate(Count(part.vars, part.body));
    }
    EXPECT_EQ(at_removed, *naive.Evaluate(u, {{x, d}}));
    // u[a] for a != d from the unary parts.
    for (ElemId e = 0; e < a.universe_size(); ++e) {
      if (e == d) continue;
      CountInt value = 0;
      for (const RemovalTermPart& part : parts->elsewhere) {
        ASSERT_GE(part.vars.size(), 1u);
        ASSERT_EQ(part.vars[0], x);
        std::vector<Var> binders(part.vars.begin() + 1, part.vars.end());
        value += *naive_removed.Evaluate(Count(binders, part.body),
                                         {{x, removed.ToLocal(e)}});
      }
      EXPECT_EQ(value, *naive.Evaluate(u, {{x, e}})) << ToString(phi);
    }
  }
}

}  // namespace
}  // namespace focq
