// Adversarial tests for LocalEvaluator's enumeration optimisations (ball
// guards, relational-atom candidates, quantifier-prefix descent with
// shadowing): each case is built so that a subtly wrong candidate
// restriction would change the answer, and the naive engine arbitrates.
#include <gtest/gtest.h>

#include "focq/eval/naive_eval.h"
#include "focq/graph/generators.h"
#include "focq/locality/local_eval.h"
#include "focq/logic/build.h"
#include "focq/logic/printer.h"
#include "focq/structure/encode.h"
#include "focq/structure/gaifman.h"
#include "test_util.h"

namespace focq {
namespace {

struct Engines {
  explicit Engines(const Structure& a)
      : gaifman(BuildGaifmanGraph(a)), naive(a), local(a, gaifman) {}
  Graph gaifman;
  NaiveEvaluator naive;
  LocalEvaluator local;
};

TEST(Candidates, ShadowedVariableIsNotABinding) {
  // exists y ( E(x, y) and exists x ( R(x) and E(y, x) ) ):
  // the inner x shadows the outer one; candidate discovery descending into
  // the inner scope must NOT treat the inner E(y, x) as constrained by the
  // outer x binding.
  Structure a = EncodeDigraph(4, {{0, 1}, {1, 2}});
  a.AddUnarySymbol("R", {2});
  Engines e(a);
  Var x = VarNamed("shx"), y = VarNamed("shy");
  Formula inner = Exists(x, And(Atom("R", {x}), Atom("E", {y, x})));
  Formula f = Exists(y, And(Atom("E", {x, y}), inner));
  for (ElemId v = 0; v < 4; ++v) {
    EXPECT_EQ(e.naive.Satisfies(f, {{x, v}}), e.local.Satisfies(f, {{x, v}}))
        << "x=" << v;
  }
  // Sanity: true exactly at x=0 (witness y=1, inner x=2).
  EXPECT_TRUE(e.local.Satisfies(f, {{x, 0}}));
  EXPECT_FALSE(e.local.Satisfies(f, {{x, 1}}));
}

TEST(Candidates, CountBinderShadowsOuterBinding) {
  // With x bound outside, #(x). R(x) must count ALL red elements, not just
  // the outer binding.
  Structure a = EncodeDigraph(5, {});
  a.AddUnarySymbol("R", {1, 2, 3});
  Engines e(a);
  Var x = VarNamed("cbx");
  Term t = Count({x}, Atom("R", {x}));
  EXPECT_EQ(*e.local.Evaluate(t, {{x, 0}}), 3);
  EXPECT_EQ(*e.naive.Evaluate(t, {{x, 0}}), 3);
}

TEST(Candidates, RepeatedVariableInAtom) {
  // E(y, y) constrains y to the diagonal only.
  Structure a = EncodeDigraph(4, {{0, 0}, {1, 2}, {3, 3}});
  Engines e(a);
  Var y = VarNamed("rvy");
  Formula f = Exists(y, Atom("E", {y, y}));
  EXPECT_TRUE(e.local.Satisfies(f));
  Term t = Count({y}, Atom("E", {y, y}));
  EXPECT_EQ(*e.local.Evaluate(t), 2);
  EXPECT_EQ(*e.naive.Evaluate(t), 2);
}

TEST(Candidates, EqualityCandidateSingleton) {
  Structure a = EncodeDigraph(6, {{2, 3}});
  Engines e(a);
  Var x = VarNamed("eqx"), y = VarNamed("eqy");
  // exists y (y = x and E(y, 3-ish)) via equality candidates.
  Formula f = Exists(y, And(Eq(y, x), Atom("E", {y, VarNamed("eqz")})));
  for (ElemId v = 0; v < 6; ++v) {
    bool expected = e.naive.Satisfies(f, {{x, v}, {VarNamed("eqz"), 3}});
    EXPECT_EQ(expected, e.local.Satisfies(f, {{x, v}, {VarNamed("eqz"), 3}}));
  }
}

TEST(Candidates, ForallRestrictedByNegatedAtom) {
  // forall y ( !E(x, y) or R(y) ): "all out-neighbours are red".
  Structure a = EncodeDigraph(5, {{0, 1}, {0, 2}, {3, 4}});
  a.AddUnarySymbol("R", {1, 2});
  Engines e(a);
  Var x = VarNamed("fax"), y = VarNamed("fay");
  Formula f = Forall(y, Or(Not(Atom("E", {x, y})), Atom("R", {y})));
  for (ElemId v = 0; v < 5; ++v) {
    EXPECT_EQ(e.naive.Satisfies(f, {{x, v}}), e.local.Satisfies(f, {{x, v}}))
        << v;
  }
  EXPECT_TRUE(e.local.Satisfies(f, {{x, 0}}));
  EXPECT_FALSE(e.local.Satisfies(f, {{x, 3}}));
}

TEST(Candidates, ForallPrefixDescentWithShadowing) {
  // forall y forall z ( !E(y, z) or z = x ):
  // candidates for y must come from E with z treated as a wildcard.
  Structure a = EncodeDigraph(4, {{0, 2}, {1, 2}});
  Engines e(a);
  Var x = VarNamed("fpx"), y = VarNamed("fpy"), z = VarNamed("fpz");
  Formula f = Forall(y, Forall(z, Or(Not(Atom("E", {y, z})), Eq(z, x))));
  for (ElemId v = 0; v < 4; ++v) {
    EXPECT_EQ(e.naive.Satisfies(f, {{x, v}}), e.local.Satisfies(f, {{x, v}}))
        << v;
  }
  EXPECT_TRUE(e.local.Satisfies(f, {{x, 2}}));
  EXPECT_FALSE(e.local.Satisfies(f, {{x, 1}}));
}

TEST(Candidates, ExistsPrefixDescentSoundness) {
  // exists y exists z ( E(y, z) and R(z) and B(y) ): candidates for y flow
  // through the prefix; z is a wildcard at discovery time.
  Structure a = EncodeDigraph(6, {{0, 1}, {2, 3}, {4, 5}});
  a.AddUnarySymbol("R", {1, 5});
  a.AddUnarySymbol("B", {4});
  Engines e(a);
  Var y = VarNamed("epy"), z = VarNamed("epz");
  Formula f =
      Exists(y, Exists(z, And({Atom("E", {y, z}), Atom("R", {z}),
                               Atom("B", {y})})));
  EXPECT_EQ(e.naive.Satisfies(f), e.local.Satisfies(f));
  EXPECT_TRUE(e.local.Satisfies(f));  // witness y=4, z=5
}

TEST(Candidates, GuardBeatsFullSweepButStaysCorrect) {
  // Mixed ball guard + atom conjunct: whichever the evaluator picks, the
  // answer must match naive.
  Rng rng(4242);
  for (int round = 0; round < 15; ++round) {
    Structure a = test::RandomColoredStructure(20, 1.5, 0.4, &rng);
    Engines e(a);
    Var x = VarNamed("gbx2"), y = VarNamed("gby2");
    Formula f = Exists(
        y, And({DistAtMost(y, x, 2), Atom("E", {x, y}), Atom("R", {y})}));
    for (ElemId v = 0; v < a.universe_size(); ++v) {
      EXPECT_EQ(e.naive.Satisfies(f, {{x, v}}),
                e.local.Satisfies(f, {{x, v}}));
    }
  }
}

TEST(Candidates, RandomizedCountingCrossCheck) {
  // Counting terms with multiple binders, random structures: the candidate
  // recursion must agree with the naive odometer everywhere.
  Rng rng(4343);
  Var x = VarNamed("rcx"), y = VarNamed("rcy"), z = VarNamed("rcz");
  for (int round = 0; round < 20; ++round) {
    Structure a = test::RandomColoredStructure(12, 1.6, 0.4, &rng);
    Engines e(a);
    Formula body = test::RandomQuantifierFree({x, y, z}, 2, true, 1, &rng);
    Term t = Count({y, z}, body);
    for (ElemId v = 0; v < a.universe_size(); ++v) {
      EXPECT_EQ(*e.naive.Evaluate(t, {{x, v}}), *e.local.Evaluate(t, {{x, v}}))
          << ToString(t) << " at " << v;
    }
  }
}

}  // namespace
}  // namespace focq
