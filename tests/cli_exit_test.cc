// End-to-end exit-code contract of focq_cli: scripted drivers (CI smoke
// tests, fuzz replay wrappers) branch on exit codes, so bad input must exit
// 1 with a one-line diagnostic — never abort. Exercises the focq_cli binary
// itself via its path baked in from CMake.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#ifndef FOCQ_CLI_PATH
#error "FOCQ_CLI_PATH must name the focq_cli binary (set in CMakeLists.txt)"
#endif

namespace focq {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

// Runs the CLI, capturing combined output and the exit code. A command that
// dies on a signal (e.g. an abort) reports exit_code >= 128.
RunResult RunCli(const std::string& args) {
  std::string command = std::string(FOCQ_CLI_PATH) + " " + args + " 2>&1";
  RunResult r;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 512> buffer;
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    r.output += buffer.data();
  }
  int status = pclose(pipe);
  if (WIFEXITED(status)) {
    r.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    r.exit_code = 128 + WTERMSIG(status);
  }
  return r;
}

int CountLines(const std::string& text) {
  int lines = 0;
  for (char c : text) lines += c == '\n';
  return lines;
}

class CliExitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("focq_cli_exit_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(dir_);
    edges_path_ = (dir_ / "ok.edges").string();
    std::ofstream(edges_path_) << "0 1\n1 2\n2 3\n";
    structure_path_ = (dir_ / "ok.fs").string();
    std::ofstream(structure_path_) << "universe 3\nrelation E 2\n0 1\n1 0\n";
    bad_structure_path_ = (dir_ / "bad.fs").string();
    std::ofstream(bad_structure_path_) << "universe 3\nrelation E 2\n0 9\n";
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
  std::string edges_path_;
  std::string structure_path_;
  std::string bad_structure_path_;
};

TEST_F(CliExitTest, ValidQueryExitsZero) {
  RunResult r = RunCli(structure_path_ + " --count 'E(x, y)'");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("solutions: 2"), std::string::npos) << r.output;
}

TEST_F(CliExitTest, FalseSentenceExitsThree) {
  RunResult r =
      RunCli(edges_path_ + " --edges --check 'exists x. E(x, x)'");
  EXPECT_EQ(r.exit_code, 3) << r.output;
}

TEST_F(CliExitTest, UnparsableQueryExitsOneWithOneLineDiagnostic) {
  RunResult r = RunCli(structure_path_ + " --count '(((E(x, y)'");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // One structure banner line plus exactly one diagnostic line.
  EXPECT_EQ(CountLines(r.output), 2) << r.output;
  EXPECT_NE(r.output.find("focq_cli:"), std::string::npos) << r.output;
}

TEST_F(CliExitTest, UnknownRelationSymbolExitsOne) {
  RunResult r = RunCli(structure_path_ + " --check 'exists x. Q(x)'");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("unknown relation symbol"), std::string::npos)
      << r.output;
}

TEST_F(CliExitTest, ArityMismatchExitsOne) {
  RunResult r = RunCli(structure_path_ + " --check 'exists x. E(x)'");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("arity"), std::string::npos) << r.output;
}

TEST_F(CliExitTest, ArityMismatchInTermExitsOne) {
  RunResult r = RunCli(structure_path_ + " --term '#(x). (E(x))'");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("arity"), std::string::npos) << r.output;
}

TEST_F(CliExitTest, UnreadableStructureExitsOne) {
  RunResult r = RunCli((dir_ / "missing.fs").string() + " --count 'true'");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(CountLines(r.output), 1) << r.output;
}

TEST_F(CliExitTest, MalformedStructureExitsOne) {
  RunResult r = RunCli(bad_structure_path_ + " --count 'true'");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(CountLines(r.output), 1) << r.output;
}

TEST_F(CliExitTest, UpdateFlagAppliesBeforeEvaluation) {
  RunResult r = RunCli(structure_path_ +
                       " --update 'insert E 1 2' --update 'insert E 1 2'"
                       " --count 'E(x, y)'");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("update: insert E 1 2 (applied)"),
            std::string::npos) << r.output;
  EXPECT_NE(r.output.find("update: insert E 1 2 (noop)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("solutions: 3"), std::string::npos) << r.output;
}

TEST_F(CliExitTest, MalformedUpdateSpecExitsOne) {
  RunResult r = RunCli(structure_path_ +
                       " --update 'insert Q 0' --count 'true'");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("--update 'insert Q 0'"), std::string::npos)
      << r.output;
}

TEST_F(CliExitTest, BatchUpdateLinesMutateTheSharedSession) {
  std::string batch_path = (dir_ / "workload.txt").string();
  std::ofstream(batch_path) << "count E(x, y)\n"
                            << "update insert E 2 0\n"
                            << "count E(x, y)\n"
                            << "update delete E 2 0\n"
                            << "count E(x, y)\n";
  RunResult r = RunCli(structure_path_ + " --batch " + batch_path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("line 1: count: 2"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("line 2: update: applied"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("line 3: count: 3"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("line 5: count: 2"), std::string::npos) << r.output;
}

TEST_F(CliExitTest, ApproxEngineCountExitsZero) {
  // Frame 9 fits inside the default budget, so the estimate is exact and the
  // output matches the exact engines bit-for-bit.
  RunResult r = RunCli(structure_path_ +
                       " --engine approx --approx-seed 7 --count 'E(x, y)'");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("solutions: 2"), std::string::npos) << r.output;
}

TEST_F(CliExitTest, EpsOutOfRangeExitsOneWithOneLineDiagnostic) {
  for (const std::string bad : {"0", "1", "-0.5", "2"}) {
    RunResult r = RunCli(structure_path_ + " --engine approx --eps " + bad +
                         " --count 'E(x, y)'");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_EQ(CountLines(r.output), 1) << r.output;
    EXPECT_NE(r.output.find("approx eps must lie in (0, 1)"),
              std::string::npos) << r.output;
  }
  // Garbage that does not even parse as a number gets its own diagnostic.
  RunResult r = RunCli(structure_path_ +
                       " --engine approx --eps nope --count 'E(x, y)'");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("--eps expects a number in (0, 1)"),
            std::string::npos) << r.output;
}

TEST_F(CliExitTest, DeltaOutOfRangeExitsOneEvenForExactEngines) {
  RunResult r = RunCli(structure_path_ +
                       " --engine approx --delta 1 --count 'E(x, y)'");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(CountLines(r.output), 1) << r.output;
  EXPECT_NE(r.output.find("approx delta must lie in (0, 1)"),
            std::string::npos) << r.output;
  // The knobs are validated up front for every engine, so a typo never
  // silently changes the contract of a later approx run.
  r = RunCli(structure_path_ + " --delta 1 --count 'E(x, y)'");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(CountLines(r.output), 1) << r.output;
}

TEST_F(CliExitTest, ApproxWithExplainAnalyzeExitsOne) {
  RunResult r = RunCli(structure_path_ +
                       " --engine approx --explain-analyze --count 'E(x, y)'");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(CountLines(r.output), 1) << r.output;
  EXPECT_NE(
      r.output.find("--engine approx cannot be combined with --explain-analyze"),
      std::string::npos) << r.output;
}

TEST_F(CliExitTest, UsageErrorsExitTwo) {
  EXPECT_EQ(RunCli("").exit_code, 2);
  EXPECT_EQ(RunCli(structure_path_).exit_code, 2);
  EXPECT_EQ(RunCli(structure_path_ + " --bogus-flag --count 'true'")
                .exit_code, 2);
}

// std::stoull accepts a leading '-' and wraps modulo 2^64, so "-1" used to
// silently become 18446744073709551615 — a different RNG stream than asked
// for. The seed is parsed before the structure loads, so the diagnostic is
// the only output line.
TEST_F(CliExitTest, NegativeApproxSeedExitsOne) {
  RunResult r = RunCli(structure_path_ +
                       " --engine approx --approx-seed -1 --count 'E(x, y)'");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(CountLines(r.output), 1) << r.output;
  EXPECT_NE(r.output.find("--approx-seed expects a non-negative integer"),
            std::string::npos) << r.output;
  // Other stoull-reachable junk is rejected the same way.
  r = RunCli(structure_path_ +
             " --engine approx --approx-seed=+3 --count 'E(x, y)'");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  r = RunCli(structure_path_ +
             " --engine approx --approx-seed 0x10 --count 'E(x, y)'");
  EXPECT_EQ(r.exit_code, 1) << r.output;
}

TEST_F(CliExitTest, FuzzRejectsNegativeSeedWithUsage) {
  // Same stoull wraparound existed in focq_fuzz's parse_u64; a negative
  // seed must be a usage error (exit 2), not a silently huge seed.
  std::string command = std::string(FOCQ_FUZZ_PATH) +
                        " --seed -1 --cases 1 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::array<char, 512> buffer;
  std::string output;
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  int status = pclose(pipe);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2) << output;
  EXPECT_NE(output.find("usage:"), std::string::npos) << output;
}

// Batch totals count every statement kind. A batch of only failing updates
// used to report "0 statements, 3 failed".
TEST_F(CliExitTest, BatchSummaryCountsUpdateStatements) {
  std::string batch_path = (dir_ / "updates.batch").string();
  // Element 9 is outside the 3-element universe: parse succeeds (the bounds
  // check is an evaluation-time error), apply fails, batch continues.
  std::ofstream(batch_path) << "update insert E 0 9\n"
                               "update insert E 0 9\n"
                               "update insert E 0 9\n";
  RunResult r = RunCli(structure_path_ + " --batch " + batch_path);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("batch: 3 statements, 3 failed"),
            std::string::npos) << r.output;
}

TEST_F(CliExitTest, BatchSummaryCountsMixedStatements) {
  std::string batch_path = (dir_ / "mixed.batch").string();
  std::ofstream(batch_path) << "check exists x. E(x, x)\n"
                               "update insert E 0 2\n"
                               "count E(x, y)\n"
                               "update insert E 0 9\n";
  RunResult r = RunCli(structure_path_ + " --batch " + batch_path);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("line 2: update: applied"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("batch: 4 statements, 1 failed"),
            std::string::npos) << r.output;
}

}  // namespace
}  // namespace focq
