// Edge cases of the full evaluation pipeline: tiny universes, nullary
// relations as first-class citizens, empty relations, markers flowing
// through layers, and queries whose answers are forced by structure
// degeneracies.
#include <gtest/gtest.h>

#include "focq/core/api.h"
#include "focq/graph/generators.h"
#include "focq/logic/build.h"
#include "focq/structure/encode.h"
#include "focq/structure/io.h"
#include "test_util.h"

namespace focq {
namespace {

EvalOptions Naive() { return EvalOptions{Engine::kNaive, TermEngine::kBall}; }
EvalOptions Local() { return EvalOptions{Engine::kLocal, TermEngine::kBall}; }

TEST(PipelineEdge, SingleElementUniverse) {
  Structure a(Signature({{"E", 2}, {"R", 1}}), 1);
  Var x = VarNamed("pe1x"), y = VarNamed("pe1y");
  Formula phi = Ge1(Count({y}, Atom("E", {x, y})));
  for (const EvalOptions& o : {Naive(), Local()}) {
    EXPECT_EQ(*CountSolutions(phi, a, o), 0);
    EXPECT_FALSE(*ModelCheck(Exists(x, Atom("R", {x})), a, o));
    EXPECT_TRUE(*ModelCheck(Exists(x, Eq(x, x)), a, o));
  }
  a.AddTuple(0, {0, 0});  // self-loop tuple
  a.AddTuple(1, {0});
  for (const EvalOptions& o : {Naive(), Local()}) {
    EXPECT_EQ(*CountSolutions(phi, a, o), 1);
  }
}

TEST(PipelineEdge, NullaryRelationsInFormulas) {
  Structure a(Signature({{"Flag", 0}, {"R", 1}}), 3);
  a.AddTuple(1, {0});
  Var x = VarNamed("pe2x");
  Formula uses_flag = And(Atom("Flag", {}), Atom("R", {x}));
  for (const EvalOptions& o : {Naive(), Local()}) {
    EXPECT_EQ(*CountSolutions(uses_flag, a, o), 0);  // flag unset
  }
  a.AddTuple(0, {});
  for (const EvalOptions& o : {Naive(), Local()}) {
    EXPECT_EQ(*CountSolutions(uses_flag, a, o), 1);
  }
}

TEST(PipelineEdge, NullaryMarkerThroughDecomposition) {
  // A ground cardinality condition becomes a 0-ary marker relation; make
  // sure the layer materialisation and the residual evaluation handle it.
  Structure a = EncodeGraph(MakeCycle(6));
  Var x = VarNamed("pe3x"), y = VarNamed("pe3y");
  // "the number of edges-tuples is even and x has a neighbour".
  Formula phi = And(Pred(PredEven(), {Count({x, y}, Atom("E", {x, y}))}),
                    Ge1(Count({y}, Atom("E", {x, y}))));
  Result<EvalPlan> plan = CompileFormula(phi, a.signature());
  ASSERT_TRUE(plan.ok());
  bool has_nullary = false;
  for (const auto& layer : plan->layers) {
    for (const auto& def : layer) has_nullary |= def.arity == 0;
  }
  EXPECT_TRUE(has_nullary);
  EXPECT_EQ(*CountSolutions(phi, a, Local()), 6);  // 12 tuples: even
  EXPECT_EQ(*CountSolutions(phi, a, Naive()), 6);
}

TEST(PipelineEdge, NegativeAndZeroConstantsInTerms) {
  Structure a = EncodeGraph(MakePath(4));
  Var x = VarNamed("pe4x"), y = VarNamed("pe4y");
  Term deg = Count({y}, Atom("E", {x, y}));
  // deg(x) - 2 >= 1 never holds on a path (max degree 2).
  Formula phi = Ge1(Sub(deg, Int(2)));
  for (const EvalOptions& o : {Naive(), Local()}) {
    EXPECT_EQ(*CountSolutions(phi, a, o), 0);
  }
  // 0 * deg + (-1) is never >= 1.
  Formula zero = Ge1(Add(Mul(Int(0), deg), Int(-1)));
  for (const EvalOptions& o : {Naive(), Local()}) {
    EXPECT_EQ(*CountSolutions(zero, a, o), 0);
  }
}

TEST(PipelineEdge, DisconnectedStructure) {
  // Two components; counting across them exercises the disconnected-pattern
  // inclusion-exclusion inside the pipeline.
  Structure left = EncodeGraph(MakePath(5));
  Structure right = EncodeGraph(MakeCycle(4));
  Structure a = Structure::DisjointUnion(left, right);
  Var x = VarNamed("pe5x"), y = VarNamed("pe5y");
  // Pairs (x, y) where both have degree >= 2 -- includes cross-component
  // pairs.
  Formula deg2 = Ge1(Sub(Count({VarNamed("pe5z")},
                               Atom("E", {x, VarNamed("pe5z")})),
                         Int(1)));
  Formula deg2y = Ge1(Sub(Count({VarNamed("pe5w")},
                                Atom("E", {y, VarNamed("pe5w")})),
                          Int(1)));
  Term pairs = Count({x, y}, And(deg2, deg2y));
  Result<CountInt> naive = EvaluateGroundTerm(pairs, a, Naive());
  Result<CountInt> local = EvaluateGroundTerm(pairs, a, Local());
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  EXPECT_EQ(*naive, *local);
  // Path: 3 inner vertices; cycle: all 4. (3+4)^2 = 49.
  EXPECT_EQ(*naive, 49);
}

TEST(PipelineEdge, RemovalSignatureNamesSurviveIo) {
  // sigma~ names like "E~{1}" and "S_2" must round-trip through the text
  // format (they contain no whitespace).
  Structure a(Signature({{"E~{1}", 1}, {"S_2", 1}, {"E~{1,2}", 0}}), 3);
  a.AddTuple(0, {1});
  a.AddTuple(2, {});
  Result<Structure> back = ReadStructure(WriteStructure(a));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->Holds(*back->signature().Find("E~{1}"), {1}));
  EXPECT_TRUE(back->NullaryHolds(*back->signature().Find("E~{1,2}")));
}

TEST(PipelineEdge, RandomizedEngineAgreementOnDenseControls) {
  // The engines must agree on *somewhere dense* inputs too (just slower).
  Rng rng(888);
  Var x = VarNamed("pe6x"), y = VarNamed("pe6y");
  for (int round = 0; round < 5; ++round) {
    Structure a = EncodeGraph(MakeErdosRenyi(12, 0.5, &rng));
    Formula phi = TermEq(Count({y}, Atom("E", {x, y})), Int(6));
    EXPECT_EQ(*CountSolutions(phi, a, Naive()),
              *CountSolutions(phi, a, Local()));
  }
  Structure clique = EncodeGraph(MakeClique(10));
  Formula all9 = TermEq(Count({y}, Atom("E", {x, y})), Int(9));
  EXPECT_EQ(*CountSolutions(all9, clique, Naive()), 10);
  EXPECT_EQ(*CountSolutions(all9, clique, Local()), 10);
}

TEST(PipelineEdge, EmptyRelationsEverywhere) {
  // Every relation empty: counting terms are 0 everywhere, atoms never hold,
  // but equality and pure-logic subformulas still work.
  Structure a(Signature({{"E", 2}, {"R", 1}}), 5);
  Var x = VarNamed("pe8x"), y = VarNamed("pe8y");
  for (const EvalOptions& o : {Naive(), Local()}) {
    EXPECT_EQ(*CountSolutions(Atom("E", {x, y}), a, o), 0);
    EXPECT_EQ(*CountSolutions(Atom("R", {x}), a, o), 0);
    EXPECT_EQ(*EvaluateGroundTerm(Count({x, y}, Atom("E", {x, y})), a, o), 0);
    // not E(x,y) holds for all 25 pairs on an empty edge relation.
    EXPECT_EQ(*CountSolutions(Not(Atom("E", {x, y})), a, o), 25);
    EXPECT_TRUE(*ModelCheck(Forall(x, Not(Atom("R", {x}))), a, o));
  }
}

TEST(PipelineEdge, DistanceBoundBeyondDiameter) {
  // dist(x,y) <= r with r far beyond the diameter: every connected pair
  // qualifies, and balls saturate to whole components.
  Structure a = Structure::DisjointUnion(EncodeGraph(MakePath(4)),
                                         EncodeGraph(MakePath(3)));
  Var x = VarNamed("pe9x"), y = VarNamed("pe9y");
  Formula near = DistAtMost(x, y, 50);
  for (const EvalOptions& o : {Naive(), Local()}) {
    // 4^2 pairs inside the path, 3^2 inside the triangle-free path.
    EXPECT_EQ(*CountSolutions(near, a, o), 16 + 9);
    // Counting within a huge radius equals the component size.
    Term reach = Count({y}, DistAtMost(x, y, 50));
    Formula comp4 = TermEq(reach, Int(4));
    EXPECT_EQ(*CountSolutions(comp4, a, o), 4);
  }
}

TEST(PipelineEdge, CountingTermsValuedZeroEverywhere) {
  // A counting term that is 0 for every assignment: predicates over it must
  // still evaluate correctly (0 is even, not >= 1, divides nothing...).
  Structure a = EncodeGraph(MakePath(5));
  Var x = VarNamed("peAx"), y = VarNamed("peAy");
  Term zero = Count({y}, And(Atom("E", {x, y}), Not(Eq(y, y))));
  for (const EvalOptions& o : {Naive(), Local()}) {
    EXPECT_EQ(*CountSolutions(Ge1(zero), a, o), 0);
    EXPECT_EQ(*CountSolutions(Pred(PredEven(), {zero}), a, o), 5);
    EXPECT_EQ(*CountSolutions(TermEq(zero, Int(0)), a, o), 5);
    EXPECT_EQ(*EvaluateGroundTerm(Count({x}, Ge1(zero)), a, o), 0);
  }
}

TEST(PipelineEdge, SingleVertexNoEdges) {
  // The 1-element graph encoding: r-balls are trivial, covers degenerate.
  Graph g(1);
  g.Finalize();
  Structure a = EncodeGraph(g);
  Var x = VarNamed("peBx"), y = VarNamed("peBy");
  for (const EvalOptions& o : {Naive(), Local()}) {
    EXPECT_TRUE(*ModelCheck(Forall(x, Forall(y, Eq(x, y))), a, o));
    EXPECT_EQ(*CountSolutions(Ge1(Count({y}, Atom("E", {x, y}))), a, o), 0);
    EXPECT_EQ(*CountSolutions(DistAtMost(x, y, 3), a, o), 1);  // x = y only
  }
}

TEST(PipelineEdge, FullyDisconnectedGaifmanGraph) {
  // No binary tuples at all: the Gaifman graph has no edges, so every
  // cluster is a singleton and cross-element counting runs on markers only.
  Structure a(Signature({{"E", 2}, {"R", 1}}), 6);
  for (ElemId e : {0, 2, 4}) a.AddTuple(1, {e});
  Var x = VarNamed("peCx"), y = VarNamed("peCy");
  Term reds = Count({y}, Atom("R", {y}));
  for (const EvalOptions& o : {Naive(), Local()}) {
    // |R| = 3 independently of x (Eq(x,x) keeps x free, so all 6 qualify).
    EXPECT_EQ(*CountSolutions(And(Eq(x, x), TermEq(reds, Int(3))), a, o), 6);
    EXPECT_EQ(*CountSolutions(And(Atom("R", {x}), Ge1(reds)), a, o), 3);
    EXPECT_EQ(*EvaluateGroundTerm(Count({x, y}, DistAtMost(x, y, 2)), a, o),
              6);  // only the diagonal
  }
}

TEST(PipelineEdge, StringStructuresThroughThePipeline) {
  // Strings have clique Gaifman graphs; the pipeline must stay correct
  // (Section 4 is precisely about them being hard, not wrong).
  Structure s = EncodeString("abcabc", "abc");
  Var x = VarNamed("pe7x"), y = VarNamed("pe7y");
  // Number of positions with exactly 3 strictly-smaller positions.
  Formula three_before =
      TermEq(Count({y}, And(Atom("<=", {y, x}), Not(Eq(y, x)))), Int(3));
  EXPECT_EQ(*CountSolutions(three_before, s, Naive()), 1);
  EXPECT_EQ(*CountSolutions(three_before, s, Local()), 1);
}

}  // namespace
}  // namespace focq
