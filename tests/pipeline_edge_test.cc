// Edge cases of the full evaluation pipeline: tiny universes, nullary
// relations as first-class citizens, empty relations, markers flowing
// through layers, and queries whose answers are forced by structure
// degeneracies.
#include <gtest/gtest.h>

#include "focq/core/api.h"
#include "focq/graph/generators.h"
#include "focq/logic/build.h"
#include "focq/structure/encode.h"
#include "focq/structure/io.h"
#include "test_util.h"

namespace focq {
namespace {

EvalOptions Naive() { return EvalOptions{Engine::kNaive, TermEngine::kBall}; }
EvalOptions Local() { return EvalOptions{Engine::kLocal, TermEngine::kBall}; }

TEST(PipelineEdge, SingleElementUniverse) {
  Structure a(Signature({{"E", 2}, {"R", 1}}), 1);
  Var x = VarNamed("pe1x"), y = VarNamed("pe1y");
  Formula phi = Ge1(Count({y}, Atom("E", {x, y})));
  for (const EvalOptions& o : {Naive(), Local()}) {
    EXPECT_EQ(*CountSolutions(phi, a, o), 0);
    EXPECT_FALSE(*ModelCheck(Exists(x, Atom("R", {x})), a, o));
    EXPECT_TRUE(*ModelCheck(Exists(x, Eq(x, x)), a, o));
  }
  a.AddTuple(0, {0, 0});  // self-loop tuple
  a.AddTuple(1, {0});
  for (const EvalOptions& o : {Naive(), Local()}) {
    EXPECT_EQ(*CountSolutions(phi, a, o), 1);
  }
}

TEST(PipelineEdge, NullaryRelationsInFormulas) {
  Structure a(Signature({{"Flag", 0}, {"R", 1}}), 3);
  a.AddTuple(1, {0});
  Var x = VarNamed("pe2x");
  Formula uses_flag = And(Atom("Flag", {}), Atom("R", {x}));
  for (const EvalOptions& o : {Naive(), Local()}) {
    EXPECT_EQ(*CountSolutions(uses_flag, a, o), 0);  // flag unset
  }
  a.AddTuple(0, {});
  for (const EvalOptions& o : {Naive(), Local()}) {
    EXPECT_EQ(*CountSolutions(uses_flag, a, o), 1);
  }
}

TEST(PipelineEdge, NullaryMarkerThroughDecomposition) {
  // A ground cardinality condition becomes a 0-ary marker relation; make
  // sure the layer materialisation and the residual evaluation handle it.
  Structure a = EncodeGraph(MakeCycle(6));
  Var x = VarNamed("pe3x"), y = VarNamed("pe3y");
  // "the number of edges-tuples is even and x has a neighbour".
  Formula phi = And(Pred(PredEven(), {Count({x, y}, Atom("E", {x, y}))}),
                    Ge1(Count({y}, Atom("E", {x, y}))));
  Result<EvalPlan> plan = CompileFormula(phi, a.signature());
  ASSERT_TRUE(plan.ok());
  bool has_nullary = false;
  for (const auto& layer : plan->layers) {
    for (const auto& def : layer) has_nullary |= def.arity == 0;
  }
  EXPECT_TRUE(has_nullary);
  EXPECT_EQ(*CountSolutions(phi, a, Local()), 6);  // 12 tuples: even
  EXPECT_EQ(*CountSolutions(phi, a, Naive()), 6);
}

TEST(PipelineEdge, NegativeAndZeroConstantsInTerms) {
  Structure a = EncodeGraph(MakePath(4));
  Var x = VarNamed("pe4x"), y = VarNamed("pe4y");
  Term deg = Count({y}, Atom("E", {x, y}));
  // deg(x) - 2 >= 1 never holds on a path (max degree 2).
  Formula phi = Ge1(Sub(deg, Int(2)));
  for (const EvalOptions& o : {Naive(), Local()}) {
    EXPECT_EQ(*CountSolutions(phi, a, o), 0);
  }
  // 0 * deg + (-1) is never >= 1.
  Formula zero = Ge1(Add(Mul(Int(0), deg), Int(-1)));
  for (const EvalOptions& o : {Naive(), Local()}) {
    EXPECT_EQ(*CountSolutions(zero, a, o), 0);
  }
}

TEST(PipelineEdge, DisconnectedStructure) {
  // Two components; counting across them exercises the disconnected-pattern
  // inclusion-exclusion inside the pipeline.
  Structure left = EncodeGraph(MakePath(5));
  Structure right = EncodeGraph(MakeCycle(4));
  Structure a = Structure::DisjointUnion(left, right);
  Var x = VarNamed("pe5x"), y = VarNamed("pe5y");
  // Pairs (x, y) where both have degree >= 2 -- includes cross-component
  // pairs.
  Formula deg2 = Ge1(Sub(Count({VarNamed("pe5z")},
                               Atom("E", {x, VarNamed("pe5z")})),
                         Int(1)));
  Formula deg2y = Ge1(Sub(Count({VarNamed("pe5w")},
                                Atom("E", {y, VarNamed("pe5w")})),
                          Int(1)));
  Term pairs = Count({x, y}, And(deg2, deg2y));
  Result<CountInt> naive = EvaluateGroundTerm(pairs, a, Naive());
  Result<CountInt> local = EvaluateGroundTerm(pairs, a, Local());
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  EXPECT_EQ(*naive, *local);
  // Path: 3 inner vertices; cycle: all 4. (3+4)^2 = 49.
  EXPECT_EQ(*naive, 49);
}

TEST(PipelineEdge, RemovalSignatureNamesSurviveIo) {
  // sigma~ names like "E~{1}" and "S_2" must round-trip through the text
  // format (they contain no whitespace).
  Structure a(Signature({{"E~{1}", 1}, {"S_2", 1}, {"E~{1,2}", 0}}), 3);
  a.AddTuple(0, {1});
  a.AddTuple(2, {});
  Result<Structure> back = ReadStructure(WriteStructure(a));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->Holds(*back->signature().Find("E~{1}"), {1}));
  EXPECT_TRUE(back->NullaryHolds(*back->signature().Find("E~{1,2}")));
}

TEST(PipelineEdge, RandomizedEngineAgreementOnDenseControls) {
  // The engines must agree on *somewhere dense* inputs too (just slower).
  Rng rng(888);
  Var x = VarNamed("pe6x"), y = VarNamed("pe6y");
  for (int round = 0; round < 5; ++round) {
    Structure a = EncodeGraph(MakeErdosRenyi(12, 0.5, &rng));
    Formula phi = TermEq(Count({y}, Atom("E", {x, y})), Int(6));
    EXPECT_EQ(*CountSolutions(phi, a, Naive()),
              *CountSolutions(phi, a, Local()));
  }
  Structure clique = EncodeGraph(MakeClique(10));
  Formula all9 = TermEq(Count({y}, Atom("E", {x, y})), Int(9));
  EXPECT_EQ(*CountSolutions(all9, clique, Naive()), 10);
  EXPECT_EQ(*CountSolutions(all9, clique, Local()), 10);
}

TEST(PipelineEdge, StringStructuresThroughThePipeline) {
  // Strings have clique Gaifman graphs; the pipeline must stay correct
  // (Section 4 is precisely about them being hard, not wrong).
  Structure s = EncodeString("abcabc", "abc");
  Var x = VarNamed("pe7x"), y = VarNamed("pe7y");
  // Number of positions with exactly 3 strictly-smaller positions.
  Formula three_before =
      TermEq(Count({y}, And(Atom("<=", {y, x}), Not(Eq(y, x)))), Int(3));
  EXPECT_EQ(*CountSolutions(three_before, s, Naive()), 1);
  EXPECT_EQ(*CountSolutions(three_before, s, Local()), 1);
}

}  // namespace
}  // namespace focq
