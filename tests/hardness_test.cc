#include <gtest/gtest.h>

#include "focq/eval/naive_eval.h"
#include "focq/graph/generators.h"
#include "focq/hardness/string_reduction.h"
#include "focq/hardness/tree_reduction.h"
#include "focq/logic/build.h"
#include "focq/logic/fragment.h"
#include "focq/structure/encode.h"
#include "focq/structure/gaifman.h"
#include "focq/util/rng.h"

namespace focq {
namespace {

// FO graph sentences used across the reduction tests.
Formula TriangleSentence() {
  Var x = VarNamed("h1x"), y = VarNamed("h1y"), z = VarNamed("h1z");
  return Exists(
      x, Exists(y, Exists(z, And({Atom("E", {x, y}), Atom("E", {y, z}),
                                  Atom("E", {z, x})}))));
}

Formula IsolatedVertexSentence() {
  Var x = VarNamed("h2x"), y = VarNamed("h2y");
  return Exists(x, Forall(y, Not(Atom("E", {x, y}))));
}

Formula DominatingVertexSentence() {
  Var x = VarNamed("h3x"), y = VarNamed("h3y");
  return Exists(x, Forall(y, Or(Eq(x, y), Atom("E", {x, y}))));
}

Formula HasEdgeSentence() {
  Var x = VarNamed("h4x"), y = VarNamed("h4y");
  return Exists(x, Exists(y, Atom("E", {x, y})));
}

TEST(TreeReduction, TreeShapeIsATree) {
  Rng rng(31);
  for (int round = 0; round < 5; ++round) {
    Graph g = MakeErdosRenyi(6, 0.4, &rng);
    TreeEncoding enc = BuildReductionTree(g);
    Graph gaifman = BuildGaifmanGraph(enc.structure);
    // A tree: connected with |V| - 1 edges.
    EXPECT_TRUE(IsConnected(gaifman));
    EXPECT_EQ(gaifman.num_edges(), gaifman.num_vertices() - 1);
    EXPECT_EQ(enc.a_vertices.size(), g.num_vertices());
  }
}

TEST(TreeReduction, QuadraticSize) {
  // ||T_G|| grows quadratically in |V(G)| for dense G.
  Graph small = MakeClique(4);
  Graph large = MakeClique(8);
  std::size_t s = BuildReductionTree(small).structure.Order();
  std::size_t l = BuildReductionTree(large).structure.Order();
  // Doubling n roughly quadruples the size.
  EXPECT_GT(l, 3 * s);
  EXPECT_LT(l, 8 * s);
}

TEST(TreeReduction, VertexClassification) {
  Rng rng(32);
  Graph g = MakeErdosRenyi(5, 0.5, &rng);
  TreeEncoding enc = BuildReductionTree(g);
  NaiveEvaluator eval(enc.structure);
  Var x = VarNamed("tcx");
  Formula is_a = TreePsiA(x);
  // Exactly the a-vertices satisfy psi_a.
  std::set<ElemId> a_set(enc.a_vertices.begin(), enc.a_vertices.end());
  for (ElemId e = 0; e < enc.structure.universe_size(); ++e) {
    EXPECT_EQ(eval.Satisfies(is_a, {{x, e}}), a_set.contains(e)) << e;
  }
}

TEST(TreeReduction, EdgeSimulation) {
  Rng rng(33);
  Graph g = MakeErdosRenyi(5, 0.5, &rng);
  TreeEncoding enc = BuildReductionTree(g);
  NaiveEvaluator eval(enc.structure);
  Var x = VarNamed("tex"), y = VarNamed("tey");
  Formula psi_e = TreePsiEdge(x, y);
  EXPECT_FALSE(IsFOC1(psi_e));  // the paper's point: psi_E is outside FOC1
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      bool simulated = eval.Satisfies(
          psi_e, {{x, enc.a_vertices[u]}, {y, enc.a_vertices[v]}});
      EXPECT_EQ(simulated, g.HasEdge(u, v)) << u << "-" << v;
    }
  }
}

class TreeReductionSentenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TreeReductionSentenceTest, PreservesModelChecking) {
  auto [sentence_id, seed] = GetParam();
  Formula phi;
  switch (sentence_id) {
    case 0: phi = TriangleSentence(); break;
    case 1: phi = IsolatedVertexSentence(); break;
    case 2: phi = DominatingVertexSentence(); break;
    default: phi = HasEdgeSentence(); break;
  }
  Rng rng(100 + seed);
  Graph g = MakeErdosRenyi(5, 0.35, &rng);
  Structure graph_structure = EncodeGraph(g);
  NaiveEvaluator graph_eval(graph_structure);
  bool expected = graph_eval.Satisfies(phi);

  TreeEncoding enc = BuildReductionTree(g);
  Result<Formula> phi_hat = RewriteGraphSentenceForTree(phi);
  ASSERT_TRUE(phi_hat.ok()) << phi_hat.status().ToString();
  NaiveEvaluator tree_eval(enc.structure);
  EXPECT_EQ(tree_eval.Satisfies(*phi_hat), expected);
}

INSTANTIATE_TEST_SUITE_P(Sentences, TreeReductionSentenceTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1, 2)));

TEST(TreeReduction, RejectsNonFo) {
  Var x = VarNamed("trx"), y = VarNamed("try");
  Formula counting = Ge1(Count({y}, Atom("E", {x, y})));
  EXPECT_FALSE(RewriteGraphSentenceForTree(Exists(x, counting)).ok());
}

TEST(StringReduction, StringShape) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.Finalize();
  // Vertex 0: "ac" + neighbour 1 -> "bcc"; vertex 1: "acc" + "bc" + "bccc";
  // vertex 2: "accc" + "bcc".
  EXPECT_EQ(BuildReductionString(g), "acbccaccbcbcccacccbcc");
}

TEST(StringReduction, RunLengthTerm) {
  Graph g(3);
  g.AddEdge(0, 2);
  g.Finalize();
  Structure s = BuildReductionStringStructure(g);
  NaiveEvaluator eval(s);
  Var x = VarNamed("srx");
  Term run = CRunLength(x);
  // String: a c b ccc | a cc | a ccc b c  = "acbcccaccacccbc".
  EXPECT_EQ(*eval.Evaluate(run, {{x, 0}}), 1);  // run after first 'a'
  EXPECT_EQ(*eval.Evaluate(run, {{x, 2}}), 3);  // run after the 'b'
}

class StringReductionSentenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StringReductionSentenceTest, PreservesModelChecking) {
  auto [sentence_id, seed] = GetParam();
  Formula phi;
  switch (sentence_id) {
    case 0: phi = TriangleSentence(); break;
    case 1: phi = IsolatedVertexSentence(); break;
    default: phi = HasEdgeSentence(); break;
  }
  Rng rng(200 + seed);
  Graph g = MakeErdosRenyi(4, 0.4, &rng);
  Structure graph_structure = EncodeGraph(g);
  NaiveEvaluator graph_eval(graph_structure);
  bool expected = graph_eval.Satisfies(phi);

  Structure s = BuildReductionStringStructure(g);
  Result<Formula> phi_hat = RewriteGraphSentenceForString(phi);
  ASSERT_TRUE(phi_hat.ok()) << phi_hat.status().ToString();
  NaiveEvaluator string_eval(s);
  EXPECT_EQ(string_eval.Satisfies(*phi_hat), expected);
}

INSTANTIATE_TEST_SUITE_P(Sentences, StringReductionSentenceTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace focq
