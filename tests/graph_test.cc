#include <gtest/gtest.h>

#include <algorithm>

#include "focq/graph/bfs.h"
#include "focq/graph/generators.h"
#include "focq/graph/graph.h"
#include "focq/graph/pattern_graph.h"
#include "focq/util/rng.h"

namespace focq {
namespace {

TEST(Graph, AddAndDedup) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);  // duplicate
  g.AddEdge(2, 2);  // self-loop ignored
  g.AddEdge(2, 3);
  g.Finalize();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(2, 2));
  EXPECT_EQ(g.Degree(2), 1u);
  EXPECT_EQ(g.Size(), 6u);
}

TEST(Graph, EdgesSortedPairs) {
  Graph g = MakePath(4);
  auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], std::make_pair(VertexId{0}, VertexId{1}));
  EXPECT_EQ(edges[2], std::make_pair(VertexId{2}, VertexId{3}));
}

TEST(Graph, InducedSubgraph) {
  Graph g = MakeCycle(6);
  Graph sub = g.InducedSubgraph({0, 1, 2, 4});
  EXPECT_EQ(sub.num_vertices(), 4u);
  EXPECT_EQ(sub.num_edges(), 2u);  // 0-1, 1-2 survive; 4 is isolated
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_TRUE(sub.HasEdge(1, 2));
  EXPECT_EQ(sub.Degree(3), 0u);
}

TEST(Bfs, PathDistances) {
  Graph g = MakePath(6);
  auto dist = BfsDistances(g, 0);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(dist[i], i);
}

TEST(Bfs, DisconnectedIsInfinite) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.Finalize();
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kInfiniteDistance);
}

TEST(Bfs, MultiSourceTakesMin) {
  Graph g = MakePath(10);
  auto dist = MultiSourceBfsDistances(g, {0, 9});
  EXPECT_EQ(dist[4], 4u);
  EXPECT_EQ(dist[5], 4u);
  EXPECT_EQ(dist[7], 2u);
}

TEST(Bfs, BallMatchesDistances) {
  Rng rng(5);
  Graph g = MakeRandomSparse(60, 3, &rng);
  auto dist = BfsDistances(g, 7);
  for (std::uint32_t r : {0u, 1u, 2u, 3u}) {
    auto ball = Ball(g, {7}, r);
    for (VertexId v = 0; v < 60; ++v) {
      bool inside = std::binary_search(ball.begin(), ball.end(), v);
      EXPECT_EQ(inside, dist[v] <= r) << "v=" << v << " r=" << r;
    }
  }
}

TEST(Bfs, BoundedDistance) {
  Graph g = MakePath(10);
  EXPECT_EQ(BoundedDistance(g, 2, 6, 10), 4u);
  EXPECT_EQ(BoundedDistance(g, 2, 6, 3), kInfiniteDistance);
  EXPECT_EQ(BoundedDistance(g, 3, 3, 0), 0u);
}

TEST(Bfs, BallExplorerReusable) {
  Graph g = MakeGrid(5, 5);
  BallExplorer explorer(g);
  EXPECT_EQ(explorer.Explore(12, 1).size(), 5u);  // centre + 4 neighbours
  EXPECT_EQ(explorer.Explore(0, 1).size(), 3u);   // corner
  EXPECT_EQ(explorer.Explore(12, 0).size(), 1u);
  const auto& ball = explorer.ExploreMulti({0, 24}, 1);
  EXPECT_EQ(ball.size(), 6u);
}

TEST(Bfs, ConnectedComponents) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(3, 4);
  g.Finalize();
  auto comp = ConnectedComponents(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[2], comp[3]);
  EXPECT_FALSE(IsConnected(g));
  EXPECT_TRUE(IsConnected(MakeCycle(5)));
}

TEST(Generators, Sizes) {
  EXPECT_EQ(MakePath(10).num_edges(), 9u);
  EXPECT_EQ(MakeCycle(10).num_edges(), 10u);
  EXPECT_EQ(MakeClique(6).num_edges(), 15u);
  EXPECT_EQ(MakeCompleteBipartite(3, 4).num_edges(), 12u);
  EXPECT_EQ(MakeGrid(3, 4).num_edges(), 17u);
  EXPECT_EQ(MakeCaterpillar(5, 3).num_vertices(), 20u);
  EXPECT_EQ(MakeCaterpillar(5, 3).num_edges(), 19u);
}

TEST(Generators, TreesAreTrees) {
  Rng rng(11);
  for (std::size_t n : {1u, 2u, 17u, 100u}) {
    Graph t = MakeRandomTree(n, &rng);
    EXPECT_EQ(t.num_edges(), n - (n > 0 ? 1 : 0));
    EXPECT_TRUE(IsConnected(t));
  }
  Graph b = MakeCompleteBaryTree(31, 2);
  EXPECT_EQ(b.num_edges(), 30u);
  EXPECT_TRUE(IsConnected(b));
  EXPECT_LE(b.MaxDegree(), 3u);
}

TEST(Generators, BoundedDegreeIsBounded) {
  Rng rng(13);
  Graph g = MakeRandomBoundedDegree(300, 4, &rng);
  EXPECT_LE(g.MaxDegree(), 4u);
  EXPECT_GT(g.num_edges(), 100u);  // not degenerate
}

TEST(PatternGraph, PairIndexBijective) {
  std::set<int> seen;
  for (int j = 0; j < 5; ++j) {
    for (int i = 0; i < j; ++i) {
      EXPECT_TRUE(seen.insert(PatternGraph::PairIndex(i, j)).second);
      EXPECT_EQ(PatternGraph::PairIndex(i, j), PatternGraph::PairIndex(j, i));
    }
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(PatternGraph, Components) {
  PatternGraph g(5, 0);
  g.SetEdge(0, 2);
  g.SetEdge(3, 4);
  auto comps = g.Components();
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], (std::vector<int>{0, 2}));
  EXPECT_EQ(comps[1], (std::vector<int>{1}));
  EXPECT_EQ(comps[2], (std::vector<int>{3, 4}));
  EXPECT_FALSE(g.IsConnected());
  g.SetEdge(1, 3);
  g.SetEdge(0, 1);
  EXPECT_TRUE(g.IsConnected());
}

TEST(PatternGraph, AllGraphsCount) {
  EXPECT_EQ(PatternGraph::AllGraphs(1).size(), 1u);
  EXPECT_EQ(PatternGraph::AllGraphs(2).size(), 2u);
  EXPECT_EQ(PatternGraph::AllGraphs(3).size(), 8u);
  EXPECT_EQ(PatternGraph::AllGraphs(4).size(), 64u);
  // Connected graphs on 3 vertices: 3 paths + 1 triangle.
  int connected = 0;
  for (const auto& g : PatternGraph::AllGraphs(3)) {
    if (g.IsConnected()) ++connected;
  }
  EXPECT_EQ(connected, 4);
}

TEST(PatternGraph, Induced) {
  PatternGraph g(4, 0);
  g.SetEdge(0, 1);
  g.SetEdge(1, 3);
  PatternGraph sub = g.Induced({0, 1, 3});
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_TRUE(sub.HasEdge(1, 2));
  EXPECT_FALSE(sub.HasEdge(0, 2));
}

TEST(PatternGraph, CrossingSupergraphs) {
  // G on 3 vertices: edge {0,1}; parts {0,1} vs {2}: 2 cross pairs -> 3
  // non-empty subsets.
  PatternGraph g(3, 0);
  g.SetEdge(0, 1);
  auto crossings = PatternGraph::CrossingSupergraphs(g, {0, 1}, {2});
  EXPECT_EQ(crossings.size(), 3u);
  for (const auto& h : crossings) {
    EXPECT_TRUE(h.HasEdge(0, 1));        // within-part edges preserved
    EXPECT_FALSE(h == g);                // strictly more edges
    EXPECT_TRUE(h.HasEdge(0, 2) || h.HasEdge(1, 2));
  }
}

}  // namespace
}  // namespace focq
