// Structured query log tests: digest stability (committed logs must stay
// replayable across releases), JSONL round-trip through the line parser,
// forward compatibility (unknown keys), and the asynchronous writer's
// filter/drop accounting (DESIGN.md §3g, "Request lifecycle & query log").
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "focq/obs/querylog.h"

namespace focq {
namespace {

TEST(Fnv1a64Test, GoldenValuesAreStable) {
  // FNV-1a reference vectors: the offset basis for "" and the published
  // digests for short ASCII strings. These pin the exact function — any
  // change would silently invalidate every committed query log.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
  EXPECT_EQ(Fnv1a64("true"), Fnv1a64(std::string("true")));
  EXPECT_NE(Fnv1a64("true"), Fnv1a64("false"));
}

TEST(Fnv1a64Test, HexU64IsFixedWidthLowercase) {
  EXPECT_EQ(HexU64(0), "0000000000000000");
  EXPECT_EQ(HexU64(0x2a), "000000000000002a");
  EXPECT_EQ(HexU64(0xdeadbeefcafef00dull), "deadbeefcafef00d");
  EXPECT_EQ(HexU64(~0ull), "ffffffffffffffff");
}

QueryLogRecord MakeRecord() {
  QueryLogRecord r;
  r.seq = 17;
  r.client_id = 3;
  r.trace_id = 0xabcdef0123456789ull;
  r.kind = "count";
  r.text = "@ge1(#(y). (E(x, y)))";
  r.ok = true;
  r.deadline_exceeded = false;
  r.decode_ns = 1200;
  r.queue_ns = 53000;
  r.gate_ns = 40;
  r.exec_ns = 1900000;
  r.write_ns = 2100;
  r.total_ns = 1956340;
  r.cache_hits = 4;
  r.cache_misses = 1;
  r.digest = Fnv1a64("2");
  return r;
}

TEST(QueryLogRecordTest, JsonLineRoundTrips) {
  const QueryLogRecord r = MakeRecord();
  const std::string line = r.ToJsonLine();
  Result<QueryLogRecord> parsed = ParseQueryLogLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
  EXPECT_TRUE(*parsed == r) << line;
}

TEST(QueryLogRecordTest, RoundTripsHostileStatementText) {
  QueryLogRecord r = MakeRecord();
  r.kind = "check";
  // Quotes, backslashes, newlines, tabs and a control byte: everything
  // AppendJsonString escapes must survive the trip.
  r.text = "say \"hi\" \\ twice\n\tand a control: \x01 byte";
  r.ok = false;
  r.deadline_exceeded = true;
  const std::string line = r.ToJsonLine();
  EXPECT_EQ(line.find('\n'), std::string::npos) << "JSONL must be one line";
  Result<QueryLogRecord> parsed = ParseQueryLogLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
  EXPECT_TRUE(*parsed == r) << line;
}

TEST(QueryLogRecordTest, ParserSkipsUnknownKeysAndIgnoresFieldOrder) {
  // A record from a *future* schema: extra scalar, string, nested-object
  // keys, fields in a different order. Old replay tools must still read it.
  const std::string line =
      "{\"digest\":\"00000000000000ff\",\"future_flag\":true,"
      "\"kind\":\"term\",\"annotations\":{\"user\":\"abc\",\"depth\":3},"
      "\"text\":\"#(x). (E(x, x))\",\"seq\":9,\"client\":1,"
      "\"trace\":\"0000000000000002\",\"ok\":true,\"deadline\":false,"
      "\"ns\":{\"decode\":1,\"queue\":2,\"gate\":3,\"exec\":4,\"write\":5,"
      "\"total\":15,\"future_stage\":99},"
      "\"cache\":{\"hits\":0,\"misses\":2},\"note\":\"hello\"}";
  Result<QueryLogRecord> parsed = ParseQueryLogLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seq, 9u);
  EXPECT_EQ(parsed->trace_id, 2u);
  EXPECT_EQ(parsed->kind, "term");
  EXPECT_EQ(parsed->digest, 0xffu);
  EXPECT_EQ(parsed->total_ns, 15);
  EXPECT_EQ(parsed->cache_misses, 2);
}

TEST(QueryLogRecordTest, ParserRejectsMalformedLines) {
  EXPECT_FALSE(ParseQueryLogLine("").ok());
  EXPECT_FALSE(ParseQueryLogLine("{}").ok());  // no kind
  EXPECT_FALSE(ParseQueryLogLine("not json").ok());
  EXPECT_FALSE(ParseQueryLogLine("{\"kind\":\"count\"} trailing").ok());
  EXPECT_FALSE(ParseQueryLogLine("{\"kind\":\"count\",\"trace\":\"xyz\"}").ok());
  EXPECT_FALSE(
      ParseQueryLogLine("{\"kind\":\"count\",\"seq\":").ok());  // truncated
}

class QueryLogWriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("focq_querylog_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "query.log").string();
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::vector<std::string> ReadLines() {
    std::ifstream in(path_);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(QueryLogWriterTest, WritesEveryAppendedRecordInOrder) {
  QueryLogWriter::Options options;
  options.path = path_;
  Result<std::unique_ptr<QueryLogWriter>> writer =
      QueryLogWriter::Open(std::move(options));
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (std::uint64_t i = 1; i <= 50; ++i) {
    QueryLogRecord r = MakeRecord();
    r.seq = i;
    (*writer)->Append(std::move(r));
  }
  (*writer)->Close();
  EXPECT_EQ((*writer)->written(), 50u);
  EXPECT_EQ((*writer)->dropped(), 0u);
  EXPECT_EQ((*writer)->filtered(), 0u);

  std::vector<std::string> lines = ReadLines();
  ASSERT_EQ(lines.size(), 50u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    Result<QueryLogRecord> parsed = ParseQueryLogLine(lines[i]);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    // One producer: file order is append order.
    EXPECT_EQ(parsed->seq, i + 1);
  }
}

TEST_F(QueryLogWriterTest, SlowMsThresholdFiltersFastRequests) {
  QueryLogWriter::Options options;
  options.path = path_;
  options.slow_ms = 10;  // log only requests slower than 10 ms
  Result<std::unique_ptr<QueryLogWriter>> writer =
      QueryLogWriter::Open(std::move(options));
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  QueryLogRecord fast = MakeRecord();
  fast.seq = 1;
  fast.total_ns = 9'999'999;  // 9.99 ms: below threshold
  QueryLogRecord slow = MakeRecord();
  slow.seq = 2;
  slow.total_ns = 10'000'000;  // exactly 10 ms: logged
  (*writer)->Append(std::move(fast));
  (*writer)->Append(std::move(slow));
  (*writer)->Close();

  EXPECT_EQ((*writer)->written(), 1u);
  EXPECT_EQ((*writer)->filtered(), 1u);
  EXPECT_EQ((*writer)->dropped(), 0u);
  std::vector<std::string> lines = ReadLines();
  ASSERT_EQ(lines.size(), 1u);
  Result<QueryLogRecord> parsed = ParseQueryLogLine(lines[0]);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->seq, 2u);
}

TEST_F(QueryLogWriterTest, AppendAfterCloseDropsInsteadOfBlocking) {
  QueryLogWriter::Options options;
  options.path = path_;
  Result<std::unique_ptr<QueryLogWriter>> writer =
      QueryLogWriter::Open(std::move(options));
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  (*writer)->Append(MakeRecord());
  (*writer)->Close();
  (*writer)->Append(MakeRecord());  // must not block or crash
  (*writer)->Close();               // idempotent
  EXPECT_EQ((*writer)->written(), 1u);
  EXPECT_EQ((*writer)->dropped(), 1u);
  EXPECT_EQ(ReadLines().size(), 1u);
}

TEST_F(QueryLogWriterTest, OpenFailsCleanlyOnUnwritablePath) {
  QueryLogWriter::Options options;
  options.path = (dir_ / "no-such-dir" / "query.log").string();
  Result<std::unique_ptr<QueryLogWriter>> writer =
      QueryLogWriter::Open(std::move(options));
  EXPECT_FALSE(writer.ok());
}

}  // namespace
}  // namespace focq
