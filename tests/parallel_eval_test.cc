// Parallel-vs-serial equivalence: the determinism contract says every
// num_threads value yields bit-identical results. We check it end to end on
// the three nowhere dense families of bench_scaling (random tree, grid,
// bounded-degree) for cover construction, the ball and sparse-cover term
// engines, the Hanf type-sharing evaluator, the naive reference engine and
// full unary query evaluation.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "focq/core/api.h"
#include "focq/cover/neighborhood_cover.h"
#include "focq/eval/naive_eval.h"
#include "focq/graph/generators.h"
#include "focq/hanf/hanf_eval.h"
#include "focq/hanf/sphere.h"
#include "focq/logic/build.h"
#include "focq/structure/encode.h"
#include "focq/structure/gaifman.h"
#include "test_util.h"

namespace focq {
namespace {

Graph MakeFamilyGraph(int family, std::size_t n, Rng* rng) {
  switch (family) {
    case 0:
      return MakeRandomTree(n, rng);
    case 1: {
      std::size_t side = static_cast<std::size_t>(std::sqrt(double(n)));
      return MakeGrid(side, side);
    }
    default:
      return MakeRandomBoundedDegree(n, 4, rng);
  }
}

// The width-2 FOC1 condition of bench_scaling: "x has at least two
// neighbours of degree exactly 2".
Formula ScalingCondition() {
  Var x = VarNamed("ptx"), y = VarNamed("pty"), z = VarNamed("ptz");
  Formula deg2 = TermEq(Count({z}, Atom("E", {y, z})), Int(2));
  return Ge1(Sub(Count({y}, And(Atom("E", {x, y}), deg2)), Int(1)));
}

class ParallelEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEquivalenceTest, CoverConstructionIsThreadCountIndependent) {
  int family = GetParam();
  Rng rng(1000 + family);
  Graph g = MakeFamilyGraph(family, 300, &rng);
  for (std::uint32_t r : {1u, 2u}) {
    NeighborhoodCover serial_sparse = SparseCover(g, r, 1);
    NeighborhoodCover serial_exact = ExactBallCover(g, r, 1);
    // 0 = all hardware threads; its grid must match the serial one too.
    for (int threads : {8, 0}) {
      NeighborhoodCover parallel_sparse = SparseCover(g, r, threads);
      EXPECT_EQ(serial_sparse.clusters, parallel_sparse.clusters);
      EXPECT_EQ(serial_sparse.centers, parallel_sparse.centers);
      EXPECT_EQ(serial_sparse.assignment, parallel_sparse.assignment);
      CheckCoverInvariants(g, parallel_sparse);

      NeighborhoodCover parallel_exact = ExactBallCover(g, r, threads);
      EXPECT_EQ(serial_exact.clusters, parallel_exact.clusters);
      EXPECT_EQ(serial_exact.centers, parallel_exact.centers);
      EXPECT_EQ(serial_exact.assignment, parallel_exact.assignment);
      CheckCoverInvariants(g, parallel_exact);
    }
  }
}

TEST_P(ParallelEquivalenceTest, LocalEngineCountsAreThreadCountIndependent) {
  int family = GetParam();
  Rng rng(2000 + family);
  Structure a = EncodeGraph(MakeFamilyGraph(family, 400, &rng));
  Formula phi = ScalingCondition();

  EvalOptions serial{Engine::kLocal, TermEngine::kBall, 1};
  Result<CountInt> expected = CountSolutions(phi, a, serial);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (int threads : {0, 2, 4, 8}) {
    EvalOptions options{Engine::kLocal, TermEngine::kBall, threads};
    Result<CountInt> got = CountSolutions(phi, a, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, *expected) << "threads=" << threads;
  }
}

TEST_P(ParallelEquivalenceTest, CoverEngineCountsAreThreadCountIndependent) {
  int family = GetParam();
  Rng rng(3000 + family);
  Structure a = EncodeGraph(MakeFamilyGraph(family, 400, &rng));
  Formula phi = ScalingCondition();

  EvalOptions serial{Engine::kLocal, TermEngine::kSparseCover, 1};
  Result<CountInt> expected = CountSolutions(phi, a, serial);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (int threads : {0, 2, 8}) {
    EvalOptions options{Engine::kLocal, TermEngine::kSparseCover, threads};
    Result<CountInt> got = CountSolutions(phi, a, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, *expected) << "threads=" << threads;
  }
}

TEST_P(ParallelEquivalenceTest, NaiveEngineCountsAreThreadCountIndependent) {
  int family = GetParam();
  Rng rng(4000 + family);
  Structure a = EncodeGraph(MakeFamilyGraph(family, 64, &rng));
  Formula phi = ScalingCondition();

  NaiveEvaluator eval(a);
  Result<CountInt> expected = eval.CountSolutions(phi);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (int threads : {0, 2, 4, 8}) {
    Result<CountInt> got = eval.CountSolutions(phi, threads);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, *expected) << "threads=" << threads;
  }
  // And agreement of parallel local vs parallel naive closes the loop.
  EvalOptions local{Engine::kLocal, TermEngine::kBall, 4};
  Result<CountInt> local_got = CountSolutions(phi, a, local);
  ASSERT_TRUE(local_got.ok()) << local_got.status().ToString();
  EXPECT_EQ(*local_got, *expected);
}

TEST_P(ParallelEquivalenceTest, SphereTypesAreThreadCountIndependent) {
  int family = GetParam();
  Rng rng(5000 + family);
  Structure a = EncodeGraph(MakeFamilyGraph(family, 250, &rng));
  Graph gaifman = BuildGaifmanGraph(a);
  for (std::uint32_t r : {1u, 2u}) {
    SphereTypeAssignment serial = ComputeSphereTypes(a, gaifman, r, 1);
    for (int threads : {8, 0}) {
      SphereTypeAssignment parallel = ComputeSphereTypes(a, gaifman, r,
                                                         threads);
      // Sequential interning in element order makes the dense ids themselves
      // identical, not just the partition.
      EXPECT_EQ(serial.type_of, parallel.type_of);
      EXPECT_EQ(serial.registry.NumTypes(), parallel.registry.NumTypes());
      EXPECT_EQ(serial.elements_of_type, parallel.elements_of_type);
    }
  }
}

TEST_P(ParallelEquivalenceTest, HanfCountsAreThreadCountIndependent) {
  int family = GetParam();
  Rng rng(6000 + family);
  Structure a = EncodeGraph(MakeFamilyGraph(family, 250, &rng));
  Graph gaifman = BuildGaifmanGraph(a);
  Var x = VarNamed("phx");
  Formula phi = test::RandomGuardedKernel({x}, 2, false, 2, &rng, 2);
  std::optional<std::uint32_t> r = SyntacticLocalityRadius(phi);
  ASSERT_TRUE(r.has_value());

  HanfEvaluator serial(a, gaifman, 1);
  Result<CountInt> expected = serial.CountSatisfying(phi, x, *r);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (int threads : {0, 2, 8}) {
    HanfEvaluator parallel(a, gaifman, threads);
    Result<CountInt> got = parallel.CountSatisfying(phi, x, *r);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, *expected) << "threads=" << threads;
    EXPECT_EQ(parallel.last_num_types(), serial.last_num_types());
  }
}

TEST_P(ParallelEquivalenceTest, UnaryQueryRowsAreThreadCountIndependent) {
  int family = GetParam();
  Rng rng(7000 + family);
  Structure a = EncodeGraph(MakeFamilyGraph(family, 300, &rng));
  Foc1Query q;
  Var x = VarNamed("pqx"), y = VarNamed("pqy");
  q.head_vars = {x};
  q.condition = Ge1(Count({y}, Atom("E", {x, y})));
  q.head_terms = {Count({y}, Atom("E", {x, y}))};

  EvalOptions serial{Engine::kLocal, TermEngine::kBall, 1};
  Result<QueryResult> expected = EvaluateQuery(q, a, serial);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (int threads : {0, 2, 8}) {
    EvalOptions options{Engine::kLocal, TermEngine::kBall, threads};
    Result<QueryResult> got = EvaluateQuery(q, a, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->rows.size(), expected->rows.size());
    for (std::size_t i = 0; i < got->rows.size(); ++i) {
      EXPECT_EQ(got->rows[i].elements, expected->rows[i].elements);
      EXPECT_EQ(got->rows[i].counts, expected->rows[i].counts);
    }
  }
}

TEST_P(ParallelEquivalenceTest, BinaryQueryRowsAreThreadCountIndependent) {
  // Two head variables route through the multi-query candidate verifier,
  // whose per-chunk row/status arrays must match the ParallelFor grid for
  // every thread knob (including 0 = all hardware threads).
  int family = GetParam();
  Rng rng(8000 + family);
  Structure a = EncodeGraph(MakeFamilyGraph(family, 120, &rng));
  Foc1Query q;
  Var x = VarNamed("bqx"), y = VarNamed("bqy"), z = VarNamed("bqz");
  q.head_vars = {x, y};
  // No atom covers both head variables, so candidates come from the full
  // A^2 sweep (well past the 8-chunk grid a one-worker sizing would allow).
  q.condition = And(Ge1(Count({z}, Atom("E", {x, z}))),
                    Ge1(Count({z}, Atom("E", {z, y}))));
  q.head_terms = {Mul(Count({z}, Atom("E", {x, z})),
                      Count({z}, Atom("E", {z, y})))};

  EvalOptions serial{Engine::kLocal, TermEngine::kBall, 1};
  Result<QueryResult> expected = EvaluateQuery(q, a, serial);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (int threads : {0, 2, 8}) {
    EvalOptions options{Engine::kLocal, TermEngine::kBall, threads};
    Result<QueryResult> got = EvaluateQuery(q, a, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->rows.size(), expected->rows.size());
    for (std::size_t i = 0; i < got->rows.size(); ++i) {
      EXPECT_EQ(got->rows[i].elements, expected->rows[i].elements);
      EXPECT_EQ(got->rows[i].counts, expected->rows[i].counts);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ParallelEquivalenceTest,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace focq
