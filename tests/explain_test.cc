// EXPLAIN / EXPLAIN ANALYZE: the plan tree is well-formed, per-node
// deterministic counters and byte high-water marks are bit-identical for
// every thread count, and the inclusive per-node durations nest (every
// node's children sum to at most the node itself).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "focq/core/api.h"
#include "focq/graph/generators.h"
#include "focq/logic/build.h"
#include "focq/obs/explain.h"
#include "focq/structure/encode.h"

namespace focq {
namespace {

Structure TestStructure() { return EncodeGraph(MakeGrid(5, 5)); }

Formula TestFormula() {
  Var x = VarNamed("epx"), y = VarNamed("epy");
  return Ge1(Sub(Count({y}, Atom("E", {x, y})), Int(2)));
}

// Every child's parent link points back, ids are dense and in creation
// order, and each node appears in exactly one children list (or is a root).
void ExpectWellFormedForest(const ExplainReport& report) {
  ASSERT_EQ(report.nodes.size(), report.profiles.size());
  std::vector<int> referenced(report.nodes.size(), 0);
  for (std::size_t i = 0; i < report.nodes.size(); ++i) {
    const PlanNode& node = report.nodes[i];
    EXPECT_EQ(node.id, static_cast<int>(i));
    if (node.parent >= 0) {
      ASSERT_LT(node.parent, static_cast<int>(report.nodes.size()));
      EXPECT_LT(node.parent, node.id) << "parents are created first";
    }
    for (int child : node.children) {
      ASSERT_GE(child, 0);
      ASSERT_LT(child, static_cast<int>(report.nodes.size()));
      EXPECT_EQ(report.nodes[static_cast<std::size_t>(child)].parent, node.id);
      ++referenced[static_cast<std::size_t>(child)];
    }
    EXPECT_FALSE(node.kind.empty());
  }
  for (std::size_t i = 0; i < report.nodes.size(); ++i) {
    EXPECT_EQ(referenced[i], report.nodes[i].parent >= 0 ? 1 : 0);
  }
}

TEST(Explain, PlanOnlyTreeShape) {
  Structure a = TestStructure();
  Formula phi = TestFormula();
  Result<EvalPlan> plan = CompileFormula(phi, a.signature());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  ExplainSink sink;
  PlanNodeIds ids = RegisterPlanNodes(&sink, *plan, -1);
  ExplainReport report = sink.Snapshot();

  EXPECT_FALSE(report.analyzed);
  ExpectWellFormedForest(report);
  ASSERT_GE(ids.root, 0);
  EXPECT_EQ(report.nodes[static_cast<std::size_t>(ids.root)].kind, "plan");
  ASSERT_FALSE(ids.layers.empty());
  for (std::size_t l = 0; l < ids.layers.size(); ++l) {
    const PlanNode& layer =
        report.nodes[static_cast<std::size_t>(ids.layers[l])];
    EXPECT_EQ(layer.kind, "layer");
    EXPECT_EQ(layer.parent, ids.root);
    for (int rel : ids.relations[l]) {
      EXPECT_EQ(report.nodes[static_cast<std::size_t>(rel)].parent,
                ids.layers[l]);
    }
  }
  ASSERT_GE(ids.residual, 0);
  EXPECT_EQ(report.nodes[static_cast<std::size_t>(ids.residual)].parent,
            ids.root);
  // Plain EXPLAIN measured nothing.
  for (const NodeProfile& profile : report.profiles) {
    EXPECT_EQ(profile.duration_ns, 0);
    EXPECT_EQ(profile.bytes_peak, 0);
    EXPECT_TRUE(profile.counters.empty());
  }
  // The text rendering mentions every node's kind at least once.
  std::string text = report.ToText();
  EXPECT_NE(text.find("plan:"), std::string::npos);
  EXPECT_NE(text.find("layer:"), std::string::npos);

  // With no sink the id map is populated with -1 so callers can index it
  // unconditionally.
  PlanNodeIds none = RegisterPlanNodes(nullptr, *plan, -1);
  EXPECT_EQ(none.root, -1);
  ASSERT_EQ(none.layers.size(), ids.layers.size());
  for (int layer : none.layers) EXPECT_EQ(layer, -1);
  EXPECT_EQ(none.residual, -1);
}

ExplainReport RunAnalyzed(int num_threads, TermEngine term_engine) {
  Structure a = TestStructure();
  Formula phi = TestFormula();
  MetricsSink metrics;
  ExplainSink explain;
  EvalOptions options;
  options.engine = Engine::kLocal;
  options.term_engine = term_engine;
  options.num_threads = num_threads;
  options.metrics = &metrics;
  options.explain = &explain;
  Result<CountInt> n = CountSolutions(phi, a, options);
  EXPECT_TRUE(n.ok()) << n.status().ToString();
  // 5x5 grid, deg >= 3: 12 non-corner boundary + 9 interior vertices.
  if (n.ok()) EXPECT_EQ(*n, 21);
  return explain.Snapshot();
}

TEST(Explain, AnalyzeAttributesTimeBytesAndCounters) {
  ExplainReport report = RunAnalyzed(/*num_threads=*/1,
                                     TermEngine::kSparseCover);
  EXPECT_TRUE(report.analyzed);
  ExpectWellFormedForest(report);

  bool saw_duration = false, saw_bytes = false, saw_counters = false;
  for (const NodeProfile& profile : report.profiles) {
    saw_duration |= profile.duration_ns > 0;
    saw_bytes |= profile.bytes_peak > 0;
    saw_counters |= !profile.counters.empty();
  }
  EXPECT_TRUE(saw_duration);
  EXPECT_TRUE(saw_bytes);
  EXPECT_TRUE(saw_counters);

  // The cover build shows up as a root-level artifact node.
  bool saw_artifact = false;
  for (const PlanNode& node : report.nodes) {
    if (node.kind != "artifact") continue;
    saw_artifact = true;
    EXPECT_EQ(node.parent, -1);
  }
  EXPECT_TRUE(saw_artifact);

  // Inclusive timing: each node's children sum to at most the node itself
  // (the timers nest strictly on the coordinating thread). A small epsilon
  // absorbs clock granularity.
  for (const PlanNode& node : report.nodes) {
    std::int64_t child_sum = 0;
    for (int child : node.children) {
      child_sum += report.profiles[static_cast<std::size_t>(child)].duration_ns;
    }
    const NodeProfile& profile = report.profiles[static_cast<std::size_t>(node.id)];
    EXPECT_LE(child_sum, profile.duration_ns + profile.duration_ns / 100 + 10000)
        << "node " << node.id << " (" << node.kind << ": " << node.label
        << "): children sum " << child_sum << " > own " << profile.duration_ns;
  }
}

// The determinism contract: the forest shape, per-node counters and byte
// high-water marks are bit-identical for every thread count (fresh cold
// context each run); only durations may differ.
TEST(Explain, PerNodeCountersBitIdenticalAcrossThreadCounts) {
  for (TermEngine term_engine :
       {TermEngine::kBall, TermEngine::kSparseCover}) {
    ExplainReport baseline = RunAnalyzed(0, term_engine);
    for (int num_threads : {1, 4}) {
      ExplainReport report = RunAnalyzed(num_threads, term_engine);
      ASSERT_EQ(report.nodes.size(), baseline.nodes.size())
          << "threads=" << num_threads;
      for (std::size_t i = 0; i < report.nodes.size(); ++i) {
        EXPECT_EQ(report.nodes[i].kind, baseline.nodes[i].kind);
        EXPECT_EQ(report.nodes[i].label, baseline.nodes[i].label);
        EXPECT_EQ(report.nodes[i].parent, baseline.nodes[i].parent);
        EXPECT_EQ(report.nodes[i].children, baseline.nodes[i].children);
        EXPECT_EQ(report.profiles[i].counters, baseline.profiles[i].counters)
            << "node " << i << " (" << report.nodes[i].kind << ": "
            << report.nodes[i].label << ") threads=" << num_threads;
        EXPECT_EQ(report.profiles[i].bytes_peak, baseline.profiles[i].bytes_peak)
            << "node " << i << " threads=" << num_threads;
      }
    }
  }
}

// Sinks installed or not, the answer is the same, and evaluation without an
// ExplainSink records nothing (null-safety of every instrumentation site).
TEST(Explain, SinkDoesNotChangeResults) {
  Structure a = TestStructure();
  Formula phi = TestFormula();
  EvalOptions plain;
  plain.engine = Engine::kLocal;
  Result<CountInt> expected = CountSolutions(phi, a, plain);
  ASSERT_TRUE(expected.ok());

  MetricsSink metrics;
  ExplainSink explain;
  EvalOptions instrumented = plain;
  instrumented.metrics = &metrics;
  instrumented.explain = &explain;
  Result<CountInt> observed = CountSolutions(phi, a, instrumented);
  ASSERT_TRUE(observed.ok());
  EXPECT_EQ(*observed, *expected);
  EXPECT_FALSE(explain.Snapshot().nodes.empty());
}

}  // namespace
}  // namespace focq
