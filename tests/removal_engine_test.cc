#include <gtest/gtest.h>

#include <optional>

#include "focq/core/removal_engine.h"
#include "focq/graph/generators.h"
#include "focq/logic/build.h"
#include "focq/logic/printer.h"
#include "focq/structure/encode.h"
#include "focq/structure/gaifman.h"
#include "test_util.h"

namespace focq {
namespace {

// The Section 8.2 recursion must agree with the ball evaluator on every
// input it accepts.
class RemovalEngineTest : public ::testing::TestWithParam<int> {};

TEST_P(RemovalEngineTest, MatchesBallEvaluatorOnFamilies) {
  int family = GetParam();
  Rng rng(3000 + family);
  Var y1 = VarNamed("rey1"), y2 = VarNamed("rey2");
  for (int round = 0; round < 3; ++round) {
    Graph g;
    switch (family) {
      case 0: g = MakeRandomTree(60, &rng); break;
      case 1: g = MakeGrid(7, 8); break;
      default: g = MakeRandomBoundedDegree(60, 3, &rng); break;
    }
    Structure a = EncodeGraph(g);
    std::vector<ElemId> reds;
    for (ElemId e = 0; e < a.universe_size(); ++e) {
      if (rng.NextBool(0.4)) reds.push_back(e);
    }
    a.AddUnarySymbol("R", reds);
    Graph gaifman = BuildGaifmanGraph(a);

    // Quantifier-free width-2 kernel, radius 0 (the recursion's term
    // branching is exponential in radius * depth -- demonstrator scale).
    Formula kernel = test::RandomQuantifierFree({y1, y2}, 2, true, 1, &rng);
    PatternGraph edge(2, 0);
    edge.SetEdge(0, 1);
    BasicClTerm basic{{y1, y2}, /*unary=*/true, kernel, 0, edge};

    ClTermBallEvaluator ball(a, gaifman);
    Result<std::vector<CountInt>> expected = ball.EvaluateBasicAll(basic);
    ASSERT_TRUE(expected.ok());

    RemovalEngineOptions options;
    options.base_size = 20;  // force real recursion on these sizes
    options.max_depth = 4;
    Result<std::vector<CountInt>> actual =
        EvaluateBasicWithRemoval(a, gaifman, basic, options);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_EQ(*actual, *expected)
        << "family=" << family << "\n" << ToString(kernel);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, RemovalEngineTest,
                         ::testing::Values(0, 1, 2));

TEST(RemovalEngine, Width1Kernels) {
  Rng rng(3100);
  Structure a = EncodeGraph(MakeRandomTree(70, &rng));
  std::vector<ElemId> reds;
  for (ElemId e = 0; e < a.universe_size(); ++e) {
    if (rng.NextBool(0.5)) reds.push_back(e);
  }
  a.AddUnarySymbol("R", reds);
  Graph gaifman = BuildGaifmanGraph(a);
  Var y = VarNamed("rwy");
  BasicClTerm basic{{y}, true, Atom("R", {y}), 1, PatternGraph(1, 0)};
  RemovalEngineOptions options;
  options.base_size = 8;
  Result<std::vector<CountInt>> actual =
      EvaluateBasicWithRemoval(a, gaifman, basic, options);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  for (ElemId e = 0; e < a.universe_size(); ++e) {
    bool red = std::find(reds.begin(), reds.end(), e) != reds.end();
    EXPECT_EQ((*actual)[e], red ? 1 : 0);
  }
}

TEST(RemovalEngine, RejectsQuantifiedKernels) {
  Structure a = EncodeGraph(MakePath(10));
  Graph gaifman = BuildGaifmanGraph(a);
  Var y1 = VarNamed("rqy1"), y2 = VarNamed("rqy2"), z = VarNamed("rqz");
  PatternGraph edge(2, 0);
  edge.SetEdge(0, 1);
  BasicClTerm basic{{y1, y2}, true, Exists(z, Atom("E", {y1, z})), 1, edge};
  Result<std::vector<CountInt>> r =
      EvaluateBasicWithRemoval(a, gaifman, basic);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(RemovalEngine, ThreadKnobChangesNothingButSpeed) {
  // Regression: the per-level SparseCover builds used to hardcode one
  // thread, silently ignoring the caller's knob. Now the knob is threaded
  // through — and must stay a pure speed knob: values and every removal.*/
  // cover.* counter identical at threads 0, 1 and 4.
  Rng rng(3300);
  Structure a = EncodeGraph(MakeRandomTree(80, &rng));
  Graph gaifman = BuildGaifmanGraph(a);
  Var y1 = VarNamed("rty1"), y2 = VarNamed("rty2");
  PatternGraph edge(2, 0);
  edge.SetEdge(0, 1);
  BasicClTerm basic{{y1, y2}, true, Atom("E", {y1, y2}), 0, edge};

  std::optional<std::vector<CountInt>> reference_values;
  std::optional<EvalMetrics> reference_metrics;
  for (int threads : {0, 1, 4}) {
    MetricsSink sink;
    RemovalEngineOptions options;
    options.base_size = 8;
    options.max_depth = 8;
    options.num_threads = threads;
    options.metrics = &sink;
    Result<std::vector<CountInt>> actual =
        EvaluateBasicWithRemoval(a, gaifman, basic, options);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_GT(sink.Counter("removal.cover_builds"), 0);
    EvalMetrics snapshot = sink.Snapshot();
    if (!reference_values.has_value()) {
      reference_values = *actual;
      reference_metrics = snapshot;
    } else {
      EXPECT_EQ(*actual, *reference_values) << "threads=" << threads;
      EXPECT_EQ(snapshot.counters, reference_metrics->counters)
          << "threads=" << threads;
      EXPECT_TRUE(snapshot.values == reference_metrics->values)
          << "threads=" << threads;
    }
  }
}

TEST(RemovalEngine, DeepRecursionStillExact) {
  // Tiny base size + permissive depth: many removal levels on a path.
  Structure a = EncodeGraph(MakePath(60));
  Graph gaifman = BuildGaifmanGraph(a);
  Var y1 = VarNamed("rdy1"), y2 = VarNamed("rdy2");
  PatternGraph edge(2, 0);
  edge.SetEdge(0, 1);
  BasicClTerm basic{{y1, y2}, true, Atom("E", {y1, y2}), 0, edge};
  RemovalEngineOptions options;
  options.base_size = 4;
  options.max_depth = 10;
  Result<std::vector<CountInt>> actual =
      EvaluateBasicWithRemoval(a, gaifman, basic, options);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  // On a path, #neighbours: endpoints 1, inner vertices 2.
  for (ElemId e = 0; e < 60; ++e) {
    EXPECT_EQ((*actual)[e], (e == 0 || e == 59) ? 1 : 2) << e;
  }
}

}  // namespace
}  // namespace focq
