#include <gtest/gtest.h>

#include "focq/eval/naive_eval.h"
#include "focq/graph/generators.h"
#include "focq/locality/decompose.h"
#include "focq/locality/delta.h"
#include "focq/logic/build.h"
#include "focq/logic/printer.h"
#include "focq/structure/encode.h"
#include "focq/structure/gaifman.h"
#include "test_util.h"

namespace focq {
namespace {

TEST(FoldConstants, Basics) {
  Var x = VarNamed("fcx");
  Formula f = And(True(), Atom("R", {x}));
  EXPECT_EQ(ToString(*FoldConstants(f.ref())), "R(" + VarName(x) + ")");
  EXPECT_EQ(FoldConstants(Or(False(), False()).ref())->kind, ExprKind::kFalse);
  EXPECT_EQ(FoldConstants(Not(And(True(), True())).ref())->kind,
            ExprKind::kFalse);
  EXPECT_EQ(FoldConstants(Exists(x, False()).ref())->kind, ExprKind::kFalse);
  EXPECT_EQ(FoldConstants(Forall(x, Or(True(), Atom("R", {x}))).ref())->kind,
            ExprKind::kTrue);
}

// The heart of Lemma 6.4: for every pattern graph G (connected or not),
// the symbolic decomposition evaluates to the same number as naive counting
// of kernel /\ delta_{G,2r+1}.
class CountWithPatternTest : public ::testing::TestWithParam<int> {};

TEST_P(CountWithPatternTest, MatchesNaiveOnRandomInputs) {
  int k = GetParam();
  Rng rng(700 + k);
  std::vector<Var> vars;
  for (int i = 0; i < k; ++i) vars.push_back(VarNamed("cwp" + std::to_string(i)));
  int rounds = k == 2 ? 10 : 5;
  std::size_t n = k == 2 ? 14 : 10;
  for (int round = 0; round < rounds; ++round) {
    Structure a = test::RandomColoredStructure(n, 1.3, 0.4, &rng);
    Graph gaifman = BuildGaifmanGraph(a);
    ClTermBallEvaluator ball(a, gaifman);
    NaiveEvaluator naive(a);
    // Conjunction of per-variable guarded kernels plus a quantifier-free
    // part: rich enough to exercise purification and Shannon splitting.
    std::vector<Formula> parts;
    for (int i = 0; i < k; ++i) {
      parts.push_back(test::RandomGuardedKernel({vars[i]}, 2, true, 1, &rng, 1));
    }
    parts.push_back(test::RandomQuantifierFree(vars, 2, true, 1, &rng));
    Formula kernel = And(parts);
    std::optional<std::uint32_t> r = SyntacticLocalityRadius(kernel);
    ASSERT_TRUE(r.has_value()) << ToString(kernel);

    for (const PatternGraph& g : PatternGraph::AllGraphs(k)) {
      Result<ClTerm> term = CountWithPattern(kernel, vars, /*unary=*/false,
                                             *r, g);
      ASSERT_TRUE(term.ok()) << term.status().ToString() << "\n"
                             << ToString(kernel);
      // Every basic must be connected -- that is the point of the lemma.
      for (const BasicClTerm& b : term->basics()) {
        EXPECT_TRUE(b.pattern.IsConnected());
      }
      Result<CountInt> fast = ball.EvaluateGround(*term);
      ASSERT_TRUE(fast.ok());
      Term reference =
          Count(vars, And(kernel, DeltaFormula(g, 2 * *r + 1, vars)));
      EXPECT_EQ(*fast, *naive.Evaluate(reference))
          << "kernel: " << ToString(kernel) << "\npattern: " << g.edge_mask()
          << " r=" << *r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CountWithPatternTest, ::testing::Values(2, 3));

// Top-level decomposition: #y-bar.kernel == sum over patterns; ground and
// unary versions against the naive evaluator.
class DecomposeCountTest : public ::testing::TestWithParam<int> {};

TEST_P(DecomposeCountTest, GroundMatchesNaive) {
  int k = GetParam();
  Rng rng(800 + k);
  std::vector<Var> vars;
  for (int i = 0; i < k; ++i) vars.push_back(VarNamed("dcg" + std::to_string(i)));
  int rounds = k == 1 ? 12 : (k == 2 ? 8 : 4);
  std::size_t n = k == 3 ? 10 : 16;
  for (int round = 0; round < rounds; ++round) {
    Structure a = test::RandomColoredStructure(n, 1.4, 0.4, &rng);
    Graph gaifman = BuildGaifmanGraph(a);
    ClTermBallEvaluator ball(a, gaifman);
    NaiveEvaluator naive(a);
    std::vector<Formula> parts;
    for (int i = 0; i < k; ++i) {
      parts.push_back(test::RandomGuardedKernel({vars[i]}, 2, true, 1, &rng, 1));
    }
    parts.push_back(test::RandomQuantifierFree(vars, 1, true, 1, &rng));
    Formula kernel = And(parts);
    Result<Decomposition> d = DecomposeCount(vars, /*unary=*/false, kernel);
    ASSERT_TRUE(d.ok()) << d.status().ToString() << "\n" << ToString(kernel);
    Result<CountInt> fast = ball.EvaluateGround(d->term);
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(*fast, *naive.Evaluate(Count(vars, kernel)))
        << ToString(kernel);
  }
}

TEST_P(DecomposeCountTest, UnaryMatchesNaive) {
  int k = GetParam();
  Rng rng(900 + k);
  std::vector<Var> vars;
  for (int i = 0; i < k; ++i) vars.push_back(VarNamed("dcu" + std::to_string(i)));
  int rounds = k == 1 ? 10 : (k == 2 ? 6 : 3);
  std::size_t n = k == 3 ? 9 : 14;
  for (int round = 0; round < rounds; ++round) {
    Structure a = test::RandomColoredStructure(n, 1.4, 0.4, &rng);
    Graph gaifman = BuildGaifmanGraph(a);
    ClTermBallEvaluator ball(a, gaifman);
    NaiveEvaluator naive(a);
    std::vector<Formula> parts;
    for (int i = 0; i < k; ++i) {
      parts.push_back(test::RandomGuardedKernel({vars[i]}, 2, true, 1, &rng, 1));
    }
    parts.push_back(test::RandomQuantifierFree(vars, 1, true, 1, &rng));
    Formula kernel = And(parts);
    Result<Decomposition> d = DecomposeCount(vars, /*unary=*/true, kernel);
    ASSERT_TRUE(d.ok()) << d.status().ToString() << "\n" << ToString(kernel);
    Result<std::vector<CountInt>> fast = ball.EvaluateAll(d->term);
    ASSERT_TRUE(fast.ok());
    std::vector<Var> binders(vars.begin() + 1, vars.end());
    Term reference = Count(binders, kernel);
    for (ElemId e = 0; e < a.universe_size(); ++e) {
      EXPECT_EQ((*fast)[e], *naive.Evaluate(reference, {{vars[0], e}}))
          << ToString(kernel) << " at " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, DecomposeCountTest, ::testing::Values(1, 2, 3));

TEST(DecomposeCount, RejectsUnguardedKernels) {
  Var x = VarNamed("rux"), y = VarNamed("ruy");
  Formula unguarded = Exists(y, Atom("E", {x, y}));
  Result<Decomposition> d = DecomposeCount({x}, false, unguarded);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kUnsupported);
}

TEST(DecomposeCount, RejectsForeignFreeVariables) {
  Var x = VarNamed("ffx"), y = VarNamed("ffy");
  Result<Decomposition> d = DecomposeCount({x}, false, Atom("E", {x, y}));
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST(DecomposeCount, DegreeTermHasOneBasic) {
  // #(y).E(x,y): the adjacent pattern is a single connected basic; the
  // far pattern is refuted by purification (E(x,y) forces distance 1).
  Var x = VarNamed("dtx"), y = VarNamed("dty");
  Result<Decomposition> d = DecomposeCount({x, y}, true, Atom("E", {x, y}));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->radius, 0u);
  EXPECT_EQ(d->term.NumBasics(), 1u);
}

// Theorem 6.8 path: a basic local sentence holds iff its cl-term is >= 1.
TEST(BasicLocalSentence, MatchesNaiveSemantics) {
  Rng rng(1000);
  Var y = VarNamed("blsy");
  // psi(y) = "y is red or has a neighbour at distance <= 1".
  Formula psi = Or(Atom("R", {y}),
                   GuardedExists(VarNamed("blsz"), y, 1,
                                 Atom("E", {y, VarNamed("blsz")})));
  std::optional<std::uint32_t> r = SyntacticLocalityRadius(psi);
  ASSERT_TRUE(r.has_value());
  for (int k = 1; k <= 3; ++k) {
    Result<Decomposition> d = BasicLocalSentenceTerm(k, *r, y, psi);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    for (int round = 0; round < 6; ++round) {
      Structure a = test::RandomColoredStructure(12, 1.2, 0.3, &rng);
      Graph gaifman = BuildGaifmanGraph(a);
      ClTermBallEvaluator ball(a, gaifman);
      NaiveEvaluator naive(a);
      // Reference: the basic local sentence itself.
      std::vector<Var> ys;
      std::vector<Formula> parts;
      for (int i = 0; i < k; ++i) {
        Var yi = VarNamed("blsref" + std::to_string(i));
        ys.push_back(yi);
        parts.push_back(Formula(RenameFreeVar(psi.ref(), y, yi)));
      }
      for (int i = 0; i < k; ++i) {
        for (int j = i + 1; j < k; ++j) {
          parts.push_back(Not(DistAtMost(ys[i], ys[j], 2 * *r)));
        }
      }
      Formula sentence = Exists(ys, And(parts));
      Result<CountInt> count = ball.EvaluateGround(d->term);
      ASSERT_TRUE(count.ok());
      EXPECT_EQ(*count >= 1, naive.Satisfies(sentence)) << "k=" << k;
      // The count itself also matches the witness count.
      Term witness_count = Count(ys, And(parts));
      EXPECT_EQ(*count, *naive.Evaluate(witness_count));
    }
  }
}

TEST(DecomposeCount, StatsGrowWithWidth) {
  // Data-independence: the number of basic cl-terms depends on the query
  // (width/pattern structure), not on any structure.
  Var a = VarNamed("sga"), b = VarNamed("sgb"), c = VarNamed("sgc");
  Formula kernel2 = And(Atom("R", {a}), Atom("R", {b}));
  Formula kernel3 = And({Atom("R", {a}), Atom("R", {b}), Atom("R", {c})});
  Result<Decomposition> d2 = DecomposeCount({a, b}, false, kernel2);
  Result<Decomposition> d3 = DecomposeCount({a, b, c}, false, kernel3);
  ASSERT_TRUE(d2.ok());
  ASSERT_TRUE(d3.ok());
  EXPECT_GT(d3->term.NumBasics(), d2->term.NumBasics());
}

}  // namespace
}  // namespace focq
