#include <gtest/gtest.h>

#include "focq/eval/naive_eval.h"
#include "focq/graph/generators.h"
#include "focq/logic/build.h"
#include "focq/structure/encode.h"

namespace focq {
namespace {

// A directed 4-cycle 0 -> 1 -> 2 -> 3 -> 0 plus the chord 0 -> 2.
Structure DirectedTestGraph() {
  return EncodeDigraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
}

TEST(NaiveEval, AtomsAndEquality) {
  Structure a = DirectedTestGraph();
  NaiveEvaluator eval(a);
  Var x = VarNamed("nx"), y = VarNamed("ny");
  EXPECT_TRUE(eval.Satisfies(Atom("E", {x, y}), {{x, 0}, {y, 1}}));
  EXPECT_FALSE(eval.Satisfies(Atom("E", {x, y}), {{x, 1}, {y, 0}}));
  EXPECT_TRUE(eval.Satisfies(Eq(x, y), {{x, 2}, {y, 2}}));
  EXPECT_FALSE(eval.Satisfies(Eq(x, y), {{x, 2}, {y, 3}}));
}

TEST(NaiveEval, Connectives) {
  Structure a = DirectedTestGraph();
  NaiveEvaluator eval(a);
  Var x = VarNamed("nx"), y = VarNamed("ny");
  Formula e = Atom("E", {x, y});
  EXPECT_TRUE(eval.Satisfies(Or(e, Eq(x, y)), {{x, 1}, {y, 1}}));
  EXPECT_FALSE(eval.Satisfies(And(e, Eq(x, y)), {{x, 0}, {y, 1}}));
  EXPECT_TRUE(eval.Satisfies(Not(e), {{x, 1}, {y, 0}}));
  EXPECT_TRUE(eval.Satisfies(True()));
  EXPECT_FALSE(eval.Satisfies(False()));
}

TEST(NaiveEval, Quantifiers) {
  Structure a = DirectedTestGraph();
  NaiveEvaluator eval(a);
  Var x = VarNamed("nx"), y = VarNamed("ny");
  // Every vertex has an out-neighbour.
  EXPECT_TRUE(eval.Satisfies(Forall(x, Exists(y, Atom("E", {x, y})))));
  // Some vertex has two distinct out-neighbours (vertex 0).
  Var z = VarNamed("nz");
  EXPECT_TRUE(eval.Satisfies(Exists(
      x, Exists(y, Exists(z, And({Atom("E", {x, y}), Atom("E", {x, z}),
                                  Not(Eq(y, z))}))))));
  // No vertex has an edge to itself.
  EXPECT_TRUE(eval.Satisfies(Not(Exists(x, Atom("E", {x, x})))));
}

TEST(NaiveEval, CountingTerms) {
  Structure a = DirectedTestGraph();
  NaiveEvaluator eval(a);
  Var x = VarNamed("nx"), y = VarNamed("ny");
  // Total elements.
  EXPECT_EQ(*eval.Evaluate(Count({x}, Eq(x, x))), 4);
  // Total edges.
  EXPECT_EQ(*eval.Evaluate(Count({x, y}, Atom("E", {x, y}))), 5);
  // Out-degree of vertex 0 (the paper's t := #(z).E(y,z)).
  EXPECT_EQ(*eval.Evaluate(Count({y}, Atom("E", {x, y})), {{x, 0}}), 2);
  EXPECT_EQ(*eval.Evaluate(Count({y}, Atom("E", {x, y})), {{x, 1}}), 1);
  // Zero-ary count: 1 if the body holds, else 0.
  EXPECT_EQ(*eval.Evaluate(Count({}, Exists(x, Atom("E", {x, x})))), 0);
  EXPECT_EQ(*eval.Evaluate(Count({}, Exists(x, Atom("E", {x, y}))), {{y, 2}}), 1);
}

TEST(NaiveEval, TermArithmetic) {
  Structure a = DirectedTestGraph();
  NaiveEvaluator eval(a);
  Var x = VarNamed("nx");
  Term n = Count({x}, Eq(x, x));
  EXPECT_EQ(*eval.Evaluate(Add(n, Int(3))), 7);
  EXPECT_EQ(*eval.Evaluate(Mul(n, n)), 16);
  EXPECT_EQ(*eval.Evaluate(Sub(Int(3), n)), -1);
}

TEST(NaiveEval, PaperExample32PrimeSum) {
  // Prime( #(x).x=x + #(x,y).E(x,y) ): 4 nodes + 5 edges = 9, not prime.
  Structure a = DirectedTestGraph();
  NaiveEvaluator eval(a);
  Var x = VarNamed("nx"), y = VarNamed("ny");
  Formula f = Pred(PredPrime(), {Add(Count({x}, Eq(x, x)),
                                     Count({x, y}, Atom("E", {x, y})))});
  EXPECT_FALSE(eval.Satisfies(f));
  // Drop the chord: 4 + 4 = 8, still not prime; drop one more edge: 7 prime.
  Structure b = EncodeDigraph(4, {{0, 1}, {1, 2}, {2, 3}});
  NaiveEvaluator eval_b(b);
  EXPECT_TRUE(eval_b.Satisfies(f));
}

TEST(NaiveEval, PaperExample32DegreeCountPrime) {
  // exists x Prime( #(y). P=( #(z).E(x,z), #(z).E(y,z) ) ):
  // some out-degree d such that the number of nodes of out-degree d is prime.
  Structure a = DirectedTestGraph();  // out-degrees: 2,1,1,1
  NaiveEvaluator eval(a);
  Var x = VarNamed("nx"), y = VarNamed("ny"), z = VarNamed("nz");
  Formula same_deg = TermEq(Count({z}, Atom("E", {x, z})),
                            Count({z}, Atom("E", {y, z})));
  Formula f = Exists(x, Pred(PredPrime(), {Count({y}, same_deg)}));
  // Out-degree 1 occurs 3 times (prime) -> true.
  EXPECT_TRUE(eval.Satisfies(f));
}

TEST(NaiveEval, PaperExample54ColoredDigraph) {
  // Signature {E, R, B, G}; directed triangle 0->1->2->0, vertex 3 isolated.
  Structure a = EncodeDigraph(4, {{0, 1}, {1, 2}, {2, 0}});
  a.AddUnarySymbol("R", {3});          // one red node
  a.AddUnarySymbol("B", {1, 2});       // blue nodes
  a.AddUnarySymbol("G", {2});          // one green node
  NaiveEvaluator eval(a);
  Var x = VarNamed("nx"), y = VarNamed("ny"), z = VarNamed("nz");

  Term t_red = Count({x}, Atom("R", {x}));
  EXPECT_EQ(*eval.Evaluate(t_red), 1);

  // t_triangle(x) = #(y,z). E(x,y) & E(y,z) & E(z,x).
  Term t_tri = Count({y, z}, And({Atom("E", {x, y}), Atom("E", {y, z}),
                                  Atom("E", {z, x})}));
  EXPECT_EQ(*eval.Evaluate(t_tri, {{x, 0}}), 1);
  EXPECT_EQ(*eval.Evaluate(t_tri, {{x, 3}}), 0);

  // phi_{tri,R}(x): x participates in as many triangles as there are reds.
  Formula phi = TermEq(t_tri, t_red);
  EXPECT_TRUE(eval.Satisfies(phi, {{x, 0}}));
  EXPECT_FALSE(eval.Satisfies(phi, {{x, 3}}));
  // Number of such nodes: the three triangle vertices.
  EXPECT_EQ(*eval.Evaluate(Count({x}, phi)), 3);

  // t_B(x) = number of blue out-neighbours.
  Term t_blue = Count({y}, And(Atom("E", {x, y}), Atom("B", {y})));
  EXPECT_EQ(*eval.Evaluate(t_blue, {{x, 0}}), 1);
}

TEST(NaiveEval, CountSolutionsMatchesDefinition) {
  Structure a = DirectedTestGraph();
  NaiveEvaluator eval(a);
  Var x = VarNamed("nx"), y = VarNamed("ny");
  // Pairs with an edge: 5.
  EXPECT_EQ(*eval.CountSolutions(Atom("E", {x, y})), 5);
  // Vertices with out-degree >= 2: just vertex 0.
  Formula deg2 = Ge1(Sub(Count({y}, Atom("E", {x, y})), Int(1)));
  EXPECT_EQ(*eval.CountSolutions(deg2), 1);
  // A sentence counts as 0 or 1.
  EXPECT_EQ(*eval.CountSolutions(Exists(x, Atom("E", {x, x}))), 0);
}

TEST(NaiveEval, DistanceAtoms) {
  Structure a = EncodeGraph(MakePath(6));
  NaiveEvaluator eval(a);
  Var x = VarNamed("nx"), y = VarNamed("ny");
  EXPECT_TRUE(eval.Satisfies(DistAtMost(x, y, 3), {{x, 0}, {y, 3}}));
  EXPECT_FALSE(eval.Satisfies(DistAtMost(x, y, 2), {{x, 0}, {y, 3}}));
  EXPECT_TRUE(eval.Satisfies(DistAtMost(x, y, 0), {{x, 2}, {y, 2}}));
}

TEST(NaiveEval, OverflowSurfacesAsError) {
  Structure a = DirectedTestGraph();
  NaiveEvaluator eval(a);
  Term big = Int(INT64_MAX);
  Result<CountInt> r = eval.Evaluate(Add(big, Int(1)));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace focq
