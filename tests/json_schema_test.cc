// Golden-schema regression test for the observability JSON documents shipped
// by `focq_cli --metrics-json` / `--trace-json` (composed in
// focq/obs/json_export.h). External dashboards consume these files, so the
// key set and value types are a compatibility contract: loosening or
// renaming a key must fail here first.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "focq/core/api.h"
#include "focq/graph/generators.h"
#include "focq/logic/build.h"
#include "focq/obs/benchdiff.h"
#include "focq/obs/json_export.h"
#include "focq/structure/encode.h"

namespace focq {
namespace {

// A minimal JSON reader, just enough to validate document *shape*. Values
// are objects, arrays, strings, numbers or booleans; no escapes beyond the
// ones the exporters emit (\" \\ \n \t and \u00xx).
struct Json {
  enum Kind { kObject, kArray, kString, kNumber, kBool } kind;
  std::map<std::string, Json> object;
  std::vector<Json> array;
  std::string string;
  double number = 0;
  bool boolean = false;

  bool Has(const std::string& key) const { return object.count(key) > 0; }
  const Json& At(const std::string& key) const { return object.at(key); }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json Parse() {
    Json v = ParseValue();
    Skip();
    EXPECT_EQ(pos_, text_.size()) << "trailing bytes after JSON document";
    return v;
  }

 private:
  void Skip() {
    while (pos_ < text_.size() && std::isspace(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    Skip();
    EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void Expect(char c) {
    EXPECT_EQ(Peek(), c) << "at byte " << pos_;
    ++pos_;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;  // keep escaped char verbatim
      out += text_[pos_++];
    }
    Expect('"');
    return out;
  }

  Json ParseValue() {
    Json v;
    switch (Peek()) {
      case '{': {
        v.kind = Json::kObject;
        Expect('{');
        if (Peek() != '}') {
          while (true) {
            std::string key = ParseString();
            Expect(':');
            v.object.emplace(key, ParseValue());
            if (Peek() != ',') break;
            Expect(',');
          }
        }
        Expect('}');
        return v;
      }
      case '[': {
        v.kind = Json::kArray;
        Expect('[');
        if (Peek() != ']') {
          while (true) {
            v.array.push_back(ParseValue());
            if (Peek() != ',') break;
            Expect(',');
          }
        }
        Expect(']');
        return v;
      }
      case '"':
        v.kind = Json::kString;
        v.string = ParseString();
        return v;
      case 't':
      case 'f':
        v.kind = Json::kBool;
        v.boolean = text_[pos_] == 't';
        pos_ += v.boolean ? 4 : 5;
        return v;
      default: {
        v.kind = Json::kNumber;
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
          ++pos_;
        }
        EXPECT_GT(pos_, start) << "not a JSON value at byte " << start;
        v.number = std::stod(text_.substr(start, pos_ - start));
        return v;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// Produces one real evaluation's sinks: metrics + trace of a pipeline run
// that exercises counting terms (so counters and spans are non-empty).
void RunInstrumented(MetricsSink* metrics, TraceSink* trace) {
  Structure a = EncodeGraph(MakeGrid(4, 4));
  Var x = VarNamed("jsx"), y = VarNamed("jsy");
  Formula phi = Ge1(Sub(Count({y}, Atom("E", {x, y})), Int(2)));
  EvalOptions options;
  options.engine = Engine::kLocal;
  options.metrics = metrics;
  options.trace = trace;
  ScopedSpan root(trace, "query_eval");
  Result<CountInt> n = CountSolutions(phi, a, options);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
}

void ExpectIntegerMap(const Json& v, const std::string& label) {
  ASSERT_EQ(v.kind, Json::kObject) << label;
  for (const auto& [key, value] : v.object) {
    EXPECT_EQ(value.kind, Json::kNumber) << label << "." << key;
  }
}

TEST(JsonSchema, MetricsDocument) {
  MetricsSink metrics;
  TraceSink trace;
  RunInstrumented(&metrics, &trace);
  std::string text = ComposeMetricsJson(metrics.Snapshot(), trace);
  Json doc = Parser(text).Parse();

  // The contract: exactly these four top-level keys.
  ASSERT_EQ(doc.kind, Json::kObject);
  EXPECT_EQ(doc.object.size(), 4u);
  ASSERT_TRUE(doc.Has("counters"));
  ASSERT_TRUE(doc.Has("values"));
  ASSERT_TRUE(doc.Has("phase_ns"));
  ASSERT_TRUE(doc.Has("pool"));

  ExpectIntegerMap(doc.At("counters"), "counters");
  EXPECT_FALSE(doc.At("counters").object.empty());

  const Json& values = doc.At("values");
  ASSERT_EQ(values.kind, Json::kObject);
  for (const auto& [name, stats] : values.object) {
    ASSERT_EQ(stats.kind, Json::kObject) << "values." << name;
    EXPECT_EQ(stats.object.size(), 8u) << "values." << name;
    for (const char* key :
         {"count", "sum", "min", "max", "mean", "p50", "p95", "p99"}) {
      ASSERT_TRUE(stats.Has(key)) << "values." << name << "." << key;
      EXPECT_EQ(stats.At(key).kind, Json::kNumber);
    }
  }

  ExpectIntegerMap(doc.At("phase_ns"), "phase_ns");
  EXPECT_TRUE(doc.At("phase_ns").Has("query_eval"));

  const Json& pool = doc.At("pool");
  ASSERT_EQ(pool.kind, Json::kObject);
  EXPECT_EQ(pool.object.size(), 5u);
  for (const char* key :
       {"workers", "tasks_submitted", "tasks_executed", "steals", "busy_ns"}) {
    ASSERT_TRUE(pool.Has(key)) << "pool." << key;
    EXPECT_EQ(pool.At(key).kind, Json::kNumber) << "pool." << key;
  }
}

void ExpectSpanShape(const Json& span) {
  ASSERT_EQ(span.kind, Json::kObject);
  for (const char* key : {"name", "start_ns", "duration_ns", "children"}) {
    ASSERT_TRUE(span.Has(key)) << "span." << key;
  }
  EXPECT_EQ(span.At("name").kind, Json::kString);
  EXPECT_EQ(span.At("start_ns").kind, Json::kNumber);
  EXPECT_EQ(span.At("duration_ns").kind, Json::kNumber);
  ASSERT_EQ(span.At("children").kind, Json::kArray);
  for (const Json& child : span.At("children").array) ExpectSpanShape(child);
}

TEST(JsonSchema, TraceDocument) {
  MetricsSink metrics;
  TraceSink trace;
  RunInstrumented(&metrics, &trace);
  Json doc = Parser(ComposeTraceJson(trace)).Parse();

  ASSERT_EQ(doc.kind, Json::kObject);
  EXPECT_EQ(doc.object.size(), 2u);
  ASSERT_TRUE(doc.Has("spans"));
  ASSERT_TRUE(doc.Has("traceEvents"));

  const Json& spans = doc.At("spans");
  ASSERT_EQ(spans.kind, Json::kArray);
  ASSERT_FALSE(spans.array.empty());
  for (const Json& span : spans.array) ExpectSpanShape(span);
  EXPECT_EQ(spans.array[0].At("name").string, "query_eval");

  const Json& events = doc.At("traceEvents");
  ASSERT_EQ(events.kind, Json::kArray);
  ASSERT_FALSE(events.array.empty());
  bool saw_complete = false;
  for (const Json& event : events.array) {
    ASSERT_EQ(event.kind, Json::kObject);
    ASSERT_TRUE(event.Has("ph"));
    const std::string& ph = event.At("ph").string;
    if (ph == "M") {
      // Thread-name metadata for the worker lanes.
      EXPECT_EQ(event.At("name").string, "thread_name");
      for (const char* key : {"pid", "tid", "args"}) {
        ASSERT_TRUE(event.Has(key)) << "traceEvent." << key;
      }
      ASSERT_TRUE(event.At("args").Has("name"));
      continue;
    }
    EXPECT_EQ(ph, "X");
    saw_complete = true;
    for (const char* key : {"name", "pid", "tid", "ts", "dur"}) {
      ASSERT_TRUE(event.Has(key)) << "traceEvent." << key;
    }
  }
  EXPECT_TRUE(saw_complete);
}

void ExpectExplainNodeShape(const Json& node) {
  ASSERT_EQ(node.kind, Json::kObject);
  EXPECT_EQ(node.object.size(), 8u);
  for (const char* key : {"id", "parent", "duration_ns", "bytes_peak"}) {
    ASSERT_TRUE(node.Has(key)) << "node." << key;
    EXPECT_EQ(node.At(key).kind, Json::kNumber) << "node." << key;
  }
  for (const char* key : {"kind", "label"}) {
    ASSERT_TRUE(node.Has(key)) << "node." << key;
    EXPECT_EQ(node.At(key).kind, Json::kString) << "node." << key;
  }
  ASSERT_TRUE(node.Has("counters"));
  ExpectIntegerMap(node.At("counters"), "node.counters");
  ASSERT_TRUE(node.Has("children"));
  ASSERT_EQ(node.At("children").kind, Json::kArray);
  for (const Json& child : node.At("children").array) {
    ExpectExplainNodeShape(child);
  }
}

TEST(JsonSchema, ExplainDocument) {
  Structure a = EncodeGraph(MakeGrid(4, 4));
  Var x = VarNamed("jex"), y = VarNamed("jey");
  Formula phi = Ge1(Sub(Count({y}, Atom("E", {x, y})), Int(2)));
  MetricsSink metrics;
  ExplainSink explain;
  EvalOptions options;
  options.engine = Engine::kLocal;
  options.metrics = &metrics;
  options.explain = &explain;
  Result<CountInt> n = CountSolutions(phi, a, options);
  ASSERT_TRUE(n.ok()) << n.status().ToString();

  std::string text = ComposeExplainJson(explain.Snapshot());
  Json doc = Parser(text).Parse();

  ASSERT_EQ(doc.kind, Json::kObject);
  EXPECT_EQ(doc.object.size(), 1u);
  ASSERT_TRUE(doc.Has("explain"));
  const Json& body = doc.At("explain");
  ASSERT_EQ(body.kind, Json::kObject);
  EXPECT_EQ(body.object.size(), 2u);
  ASSERT_TRUE(body.Has("analyzed"));
  EXPECT_EQ(body.At("analyzed").kind, Json::kBool);
  EXPECT_TRUE(body.At("analyzed").boolean);
  ASSERT_TRUE(body.Has("nodes"));
  ASSERT_EQ(body.At("nodes").kind, Json::kArray);
  ASSERT_FALSE(body.At("nodes").array.empty());
  for (const Json& node : body.At("nodes").array) {
    ExpectExplainNodeShape(node);
    EXPECT_EQ(node.At("parent").number, -1) << "top-level nodes are roots";
  }
}

// Two hand-written Google-Benchmark documents: one row regresses past the
// threshold, one counter drifts, one benchmark appears, one disappears, and
// an aggregate (_mean) row must be ignored.
constexpr char kBenchBase[] = R"({
  "context": {"date": "2026-01-01"},
  "benchmarks": [
    {"name": "BM_A/64", "run_type": "iteration", "iterations": 100,
     "real_time": 10.0, "cpu_time": 9.0, "time_unit": "ms",
     "clusters": 5.0, "tuples": 100.0},
    {"name": "BM_Gone", "run_type": "iteration", "iterations": 10,
     "real_time": 1.0, "cpu_time": 1.0, "time_unit": "ms"}
  ]
})";

constexpr char kBenchCurrent[] = R"({
  "benchmarks": [
    {"name": "BM_A/64", "run_type": "iteration", "iterations": 100,
     "real_time": 20.0, "cpu_time": 18.0, "time_unit": "ms",
     "clusters": 7.0, "tuples": 100.0},
    {"name": "BM_A/64_mean", "run_type": "aggregate", "real_time": 20.0,
     "cpu_time": 18.0, "time_unit": "ms"},
    {"name": "BM_New", "run_type": "iteration", "iterations": 10,
     "real_time": 2.0, "cpu_time": 2.0, "time_unit": "ms"}
  ]
})";

TEST(JsonSchema, BenchdiffReport) {
  Result<BenchRun> base = ParseBenchJson(kBenchBase);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  Result<BenchRun> current = ParseBenchJson(kBenchCurrent);
  ASSERT_TRUE(current.ok()) << current.status().ToString();
  EXPECT_EQ(base->rows.size(), 2u);
  EXPECT_EQ(current->rows.size(), 2u) << "aggregate rows must be dropped";
  ASSERT_FALSE(base->rows.empty());
  EXPECT_EQ(base->rows[0].counters.size(), 2u)
      << "iterations/cpu_time are bookkeeping, not counters";

  BenchDiffReport report = DiffBenchRuns(*base, *current);
  EXPECT_EQ(report.compared.size(), 1u);
  EXPECT_EQ(report.NumRegressions(), 1u);
  EXPECT_EQ(report.NumImprovements(), 0u);
  EXPECT_EQ(report.NumCounterChanges(), 1u);
  ASSERT_EQ(report.added.size(), 1u);
  EXPECT_EQ(report.added[0], "BM_New");
  ASSERT_EQ(report.removed.size(), 1u);
  EXPECT_EQ(report.removed[0], "BM_Gone");
  ASSERT_FALSE(report.compared.empty());
  EXPECT_DOUBLE_EQ(report.compared[0].time_ratio, 2.0);
  ASSERT_EQ(report.compared[0].counter_changes.count("clusters"), 1u);

  Json doc = Parser(report.ToJson()).Parse();
  ASSERT_EQ(doc.kind, Json::kObject);
  ASSERT_TRUE(doc.Has("benchdiff"));
  const Json& body = doc.At("benchdiff");
  ASSERT_EQ(body.kind, Json::kObject);
  EXPECT_EQ(body.object.size(), 9u);
  for (const char* key : {"time_threshold", "counter_threshold", "compared",
                          "regressions", "improvements", "counter_changes"}) {
    ASSERT_TRUE(body.Has(key)) << "benchdiff." << key;
    EXPECT_EQ(body.At(key).kind, Json::kNumber) << "benchdiff." << key;
  }
  EXPECT_EQ(body.At("regressions").number, 1);
  for (const char* key : {"added", "removed", "entries"}) {
    ASSERT_TRUE(body.Has(key)) << "benchdiff." << key;
    ASSERT_EQ(body.At(key).kind, Json::kArray) << "benchdiff." << key;
  }
  ASSERT_EQ(body.At("entries").array.size(), 1u);
  const Json& entry = body.At("entries").array[0];
  EXPECT_EQ(entry.object.size(), 8u);
  for (const char* key :
       {"name", "base_time", "current_time", "time_unit", "time_ratio",
        "regression", "improvement", "counter_changes"}) {
    ASSERT_TRUE(entry.Has(key)) << "entry." << key;
  }
  EXPECT_TRUE(entry.At("regression").boolean);
  ASSERT_TRUE(entry.At("counter_changes").Has("clusters"));
  const Json& change = entry.At("counter_changes").At("clusters");
  EXPECT_DOUBLE_EQ(change.At("base").number, 5.0);
  EXPECT_DOUBLE_EQ(change.At("current").number, 7.0);

  // The markdown report carries the same verdicts.
  std::string md = report.ToMarkdown();
  EXPECT_NE(md.find("**regression**"), std::string::npos);
  EXPECT_NE(md.find("BM_New"), std::string::npos);
  EXPECT_NE(md.find("BM_Gone"), std::string::npos);
  EXPECT_NE(md.find("clusters"), std::string::npos);

  // Self-compare: no regressions, exit-0 posture for the CI smoke job.
  BenchDiffReport self = DiffBenchRuns(*base, *base);
  EXPECT_EQ(self.NumRegressions(), 0u);
  EXPECT_EQ(self.NumCounterChanges(), 0u);
  EXPECT_EQ(self.compared.size(), 2u);
}

}  // namespace
}  // namespace focq
