#include <gtest/gtest.h>

#include "focq/eval/naive_eval.h"
#include "focq/graph/generators.h"
#include "focq/locality/local_eval.h"
#include "focq/logic/build.h"
#include "focq/logic/printer.h"
#include "focq/structure/encode.h"
#include "focq/structure/gaifman.h"
#include "test_util.h"

namespace focq {
namespace {

TEST(LocalityRadius, BasicRules) {
  Var x = VarNamed("lx"), y = VarNamed("ly"), z = VarNamed("lz");
  EXPECT_EQ(SyntacticLocalityRadius(Eq(x, y)), 0u);
  EXPECT_EQ(SyntacticLocalityRadius(Atom("E", {x, y})), 0u);
  EXPECT_EQ(SyntacticLocalityRadius(DistAtMost(x, y, 4)), 2u);
  EXPECT_EQ(SyntacticLocalityRadius(DistAtMost(x, y, 5)), 3u);
  EXPECT_EQ(SyntacticLocalityRadius(Not(DistAtMost(x, y, 4))), 2u);
  // The rule is conservative: the guard atom's own radius (ceil(d/2)) also
  // participates in the body's max before the guard distance is added.
  EXPECT_EQ(SyntacticLocalityRadius(
                GuardedExists(z, x, 2, Atom("E", {z, y}))),
            3u);
  EXPECT_EQ(SyntacticLocalityRadius(
                GuardedForall(z, x, 3, DistAtMost(z, y, 2))),
            5u);
  // Unguarded quantifiers are outside the fragment.
  EXPECT_FALSE(SyntacticLocalityRadius(Exists(z, Atom("E", {x, z}))).has_value());
  // Nested guards accumulate.
  Var w = VarNamed("lw");
  Formula nested = GuardedExists(
      z, x, 2, GuardedExists(w, z, 3, Atom("E", {w, w})));
  EXPECT_EQ(SyntacticLocalityRadius(nested), 7u);
}

TEST(LocalityRadius, GuardDetection) {
  Var x = VarNamed("lx"), z = VarNamed("lz");
  Formula ge = GuardedExists(z, x, 2, Atom("R", {z}));
  BallGuard g = DetectGuard(ge.node());
  EXPECT_TRUE(g.found);
  EXPECT_EQ(g.anchor, x);
  EXPECT_EQ(g.d, 2u);
  Formula gf = GuardedForall(z, x, 3, Atom("R", {z}));
  BallGuard g2 = DetectGuard(gf.node());
  EXPECT_TRUE(g2.found);
  EXPECT_EQ(g2.d, 3u);
  // Self-guard dist(z, z) <= d is not a guard.
  Formula self = Exists(z, And(DistAtMost(z, z, 1), Atom("R", {z})));
  EXPECT_FALSE(DetectGuard(self.node()).found);
}

// The locality property itself: evaluating a guarded kernel on N_r(a-bar)
// agrees with evaluating it on the full structure.
TEST(Locality, GuardedKernelsAreLocal) {
  Rng rng(101);
  for (int round = 0; round < 30; ++round) {
    Structure a = test::RandomColoredStructure(24, 1.4, 0.3, &rng);
    Graph gaifman = BuildGaifmanGraph(a);
    Var x = VarNamed("locx"), y = VarNamed("locy");
    Formula kernel = test::RandomGuardedKernel({x, y}, 3, true, 2, &rng);
    std::optional<std::uint32_t> r = SyntacticLocalityRadius(kernel);
    ASSERT_TRUE(r.has_value());
    NaiveEvaluator naive(a);
    for (int trial = 0; trial < 8; ++trial) {
      ElemId ax = static_cast<ElemId>(rng.NextBelow(a.universe_size()));
      ElemId ay = static_cast<ElemId>(rng.NextBelow(a.universe_size()));
      bool global = naive.Satisfies(kernel, {{x, ax}, {y, ay}});
      bool local =
          EvaluateOnNeighborhood(a, gaifman, kernel, {x, y}, {ax, ay}, *r);
      EXPECT_EQ(global, local)
          << ToString(kernel) << " at (" << ax << "," << ay << ") r=" << *r;
    }
  }
}

// LocalEvaluator must agree with NaiveEvaluator on arbitrary FOC(P) input.
TEST(LocalEvaluator, AgreesWithNaiveOnGuardedFormulas) {
  Rng rng(202);
  for (int round = 0; round < 40; ++round) {
    Structure a = test::RandomColoredStructure(18, 1.3, 0.4, &rng);
    Graph gaifman = BuildGaifmanGraph(a);
    NaiveEvaluator naive(a);
    LocalEvaluator local(a, gaifman);
    Var x = VarNamed("lex");
    Formula f = test::RandomGuardedKernel({x}, 3, true, 2, &rng);
    for (ElemId e = 0; e < a.universe_size(); ++e) {
      EXPECT_EQ(naive.Satisfies(f, {{x, e}}), local.Satisfies(f, {{x, e}}))
          << ToString(f) << " at " << e;
    }
  }
}

TEST(LocalEvaluator, AgreesOnUnguardedAndCounting) {
  Rng rng(303);
  Var x = VarNamed("lux"), y = VarNamed("luy"), z = VarNamed("luz");
  for (int round = 0; round < 15; ++round) {
    Structure a = test::RandomColoredStructure(12, 1.5, 0.4, &rng);
    Graph gaifman = BuildGaifmanGraph(a);
    NaiveEvaluator naive(a);
    LocalEvaluator local(a, gaifman);
    // Unguarded sentence.
    Formula s = Exists(x, Forall(y, Or(Eq(x, y), Not(Atom("E", {x, y})))));
    EXPECT_EQ(naive.Satisfies(s), local.Satisfies(s));
    // Counting term with guard (fast path) and without (odometer).
    Term guarded = Count({z}, And(DistAtMost(z, x, 1), Atom("R", {z})));
    Term unguarded = Count({y, z}, And(Atom("E", {y, z}), Atom("R", {z})));
    for (ElemId e = 0; e < a.universe_size(); ++e) {
      EXPECT_EQ(*naive.Evaluate(guarded, {{x, e}}),
                *local.Evaluate(guarded, {{x, e}}));
    }
    Env env;
    EXPECT_EQ(*naive.Evaluate(unguarded), *local.Evaluate(unguarded, &env));
  }
}

TEST(LocalEvaluator, GuardedQuantifierEnumeratesBallOnly) {
  // On a long path, a guarded query anchored at one end never looks at the
  // far end; verify correctness on a case where the guard matters.
  Structure a = EncodeGraph(MakePath(50));
  Graph gaifman = BuildGaifmanGraph(a);
  LocalEvaluator local(a, gaifman);
  Var x = VarNamed("gbx"), z = VarNamed("gbz");
  // "There is a vertex within distance 3 of x of degree 1" -- true only near
  // the path's endpoints.
  Var w = VarNamed("gbw");
  Formula deg1 = Forall(
      w, Or(Not(Atom("E", {z, w})),
            Not(GuardedExists(VarNamed("gbv"), z, 1,
                              And(Atom("E", {z, VarNamed("gbv")}),
                                  Not(Eq(VarNamed("gbv"), w)))))));
  Formula f = GuardedExists(z, x, 3, deg1);
  EXPECT_TRUE(local.Satisfies(f, {{x, 1}}));
  EXPECT_TRUE(local.Satisfies(f, {{x, 48}}));
  EXPECT_FALSE(local.Satisfies(f, {{x, 25}}));
}

}  // namespace
}  // namespace focq
